// Property tests for the unified priority-transaction API (gc_routing =
// kScheduled): GC relocation work flows through the host IoScheduler as
// preemptible transactions instead of booking die timelines inline.
//
//  * conservation — every GC transaction the FTL emits is dispatched and
//    executed exactly once, and the device ends structurally consistent;
//  * no-starvation — under sustained writes the admission guard keeps the
//    free pool from falling below the GC trigger;
//  * preemption — a ready host read dispatches before every queued GC
//    copy (priority classes, die-level overtaking);
//  * QoS outcome — read latency during GC-heavy load improves over the
//    inline routing on the identical request stream;
//  * determinism — scheduled routing stays bit-for-bit reproducible.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "ftl/conventional_ftl.h"
#include "host/host_interface.h"
#include "host/load_generator.h"
#include "sched/transaction.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"

namespace ctflash::host {
namespace {

ssd::SsdConfig QosConfig(ssd::FtlKind kind, ftl::GcRouting routing) {
  auto cfg = ssd::ScaledConfig(kind, 256ull << 20, 16 * 1024, 2.0);
  cfg.timing_mode = ftl::TimingMode::kQueued;
  cfg.ftl.gc_routing = routing;
  return cfg;
}

/// Synchronous prefill BEFORE the host interface exists: the GC sink is not
/// attached yet, so inline GC keeps the pool healthy regardless of routing.
Us Prefill(ssd::Ssd& ssd, std::uint32_t fraction_pct) {
  ssd::ExperimentRunner runner(ssd);
  return runner.Prefill(ssd.LogicalBytes() / 100 * fraction_pct);
}

ClosedLoopGenerator::Config WriteBurst(const ssd::Ssd& ssd, double read_frac,
                                       std::uint64_t requests) {
  ClosedLoopGenerator::Config gen;
  gen.queue_depth = 16;
  gen.total_requests = requests;
  gen.read_fraction = read_frac;
  gen.footprint_bytes = ssd.LogicalBytes() / 100 * 60;
  gen.seed = 7;
  return gen;
}

void ExpectGcConservation(ssd::Ssd& ssd, const HostInterface& host) {
  auto& ftl = ssd.ftl();
  EXPECT_GT(ftl.stats().gc_erases, 0u) << "workload was expected to GC";
  EXPECT_GT(ftl.GcTransactionsEmitted(), 0u);
  EXPECT_EQ(ftl.GcTransactionsOutstanding(), 0u);
  EXPECT_EQ(ftl.GcTransactionsEmitted(), ftl.GcTransactionsExecuted());
  EXPECT_EQ(host.scheduler().GcReadyCount(), 0u);
  EXPECT_EQ(host.scheduler().GcDispatchedCount(),
            ftl.GcTransactionsExecuted());
  EXPECT_EQ(host.scheduler().GcDispatchedCount(),
            host.scheduler().GcCompletedCount());
  // Scheduled GC replenished the pool past the trigger before standing down.
  EXPECT_GT(ftl.FreeBlockCount(), ftl.config().gc_threshold_low);
}

TEST(GcQos, ScheduledConservationConventional) {
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled));
  const Us prefill_end = Prefill(ssd, 80);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  ClosedLoopGenerator(host, WriteBurst(ssd, 0.2, 30000)).Run();
  ExpectGcConservation(ssd, host);
  const auto& conv = dynamic_cast<const ftl::ConventionalFtl&>(ssd.ftl());
  EXPECT_TRUE(conv.CheckInvariants());
}

TEST(GcQos, ScheduledConservationPpb) {
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kPpb, ftl::GcRouting::kScheduled));
  const Us prefill_end = Prefill(ssd, 80);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  ClosedLoopGenerator(host, WriteBurst(ssd, 0.2, 30000)).Run();
  ExpectGcConservation(ssd, host);
  ASSERT_NE(ssd.ppb(), nullptr);
  EXPECT_TRUE(ssd.ppb()->CheckInvariants());
}

TEST(GcQos, NoStarvationUnderSustainedWritesConventional) {
  // Pure sustained writes at QD 16: without the admission guard the write
  // class would monopolize the device and write the pool empty.  The guard
  // holds writes while GC transactions are ready and the pool sits at the
  // floor, so the pool never falls below the GC trigger.
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled));
  const Us prefill_end = Prefill(ssd, 80);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  ssd.ftl().ResetFreePoolWatermark();
  ClosedLoopGenerator(host, WriteBurst(ssd, 0.0, 30000)).Run();
  EXPECT_GT(ssd.ftl().stats().gc_erases, 0u);
  EXPECT_GE(ssd.ftl().blocks().MinFreeWatermark(),
            ssd.ftl().config().gc_threshold_low);
  // The floor held because the admission guard actually engaged.
  EXPECT_GT(host.scheduler().WriteHoldPicks(), 0u);
}

TEST(GcQos, NoStarvationUnderSustainedWritesPpb) {
  // PPB relocations scatter across per-(area, class) lists, so one victim
  // can claim more open blocks mid-relocation than the conventional
  // single GC stream — PpbFtl widens GcScheduleLead() to cover that
  // fan-out, and the pool still never falls below the GC trigger.
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kPpb, ftl::GcRouting::kScheduled));
  const Us prefill_end = Prefill(ssd, 80);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  ssd.ftl().ResetFreePoolWatermark();
  ClosedLoopGenerator(host, WriteBurst(ssd, 0.0, 30000)).Run();
  EXPECT_GT(ssd.ftl().stats().gc_erases, 0u);
  EXPECT_GE(ssd.ftl().blocks().MinFreeWatermark(),
            ssd.ftl().config().gc_threshold_low);
  // The floor held because the admission guard actually engaged.
  EXPECT_GT(host.scheduler().WriteHoldPicks(), 0u);
}

TEST(GcQos, NoStarvationTightThresholdsPpb) {
  // Regression guard for the admission-floor sizing: with a tight trigger
  // (gc_threshold_low = 3) a lead that undercounts PPB's per-victim claim
  // fan-out would let the pool hit zero mid-relocation and abort on the
  // must-claim CHECK.  The variant-sized GcScheduleLead() keeps the run
  // alive and the pool at/above the trigger.
  auto cfg = QosConfig(ssd::FtlKind::kPpb, ftl::GcRouting::kScheduled);
  cfg.ftl.gc_threshold_low = 3;
  cfg.ftl.gc_threshold_high = 6;
  ssd::Ssd ssd(cfg);
  const Us prefill_end = Prefill(ssd, 80);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  ssd.ftl().ResetFreePoolWatermark();
  ClosedLoopGenerator(host, WriteBurst(ssd, 0.0, 30000)).Run();
  EXPECT_GT(ssd.ftl().stats().gc_erases, 0u);
  EXPECT_GE(ssd.ftl().blocks().MinFreeWatermark(),
            ssd.ftl().config().gc_threshold_low);
  ASSERT_NE(ssd.ppb(), nullptr);
  EXPECT_TRUE(ssd.ppb()->CheckInvariants());
}

TEST(GcQos, HostReadPreemptsQueuedGcCopies) {
  // Deterministic preemption probe: the moment the first GC copy
  // dispatches, schedule a host read of a mapped page.  From that point
  // until the read dispatches, NO further GC transaction may dispatch —
  // the read outranks GC in every state (even urgency-boosted GC only
  // rises above host writes).
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled));
  const Us prefill_end = Prefill(ssd, 80);
  HostConfig cfg;
  cfg.device_slots = 4;  // small command queue: GC really queues
  HostInterface host(ssd, cfg);
  host.AdvanceTo(prefill_end);

  const std::uint32_t page = ssd.config().geometry.page_size_bytes;
  Lpn probe_lpn = 0;
  while (ssd.ftl().ProbePpn(probe_lpn) == kInvalidPpn) ++probe_lpn;

  std::vector<sched::TxnSource> trace;
  std::size_t read_submitted_at = ~std::size_t{0};
  std::size_t probe_read_pos = ~std::size_t{0};
  bool probe_submitted = false;
  host.scheduler().OnDispatch([&](const FlashTransaction& txn) {
    trace.push_back(txn.source);
    if (txn.source == sched::TxnSource::kGcCopy && !probe_submitted) {
      probe_submitted = true;
      // Fires right after the current event finishes, while the rest of
      // the GC job still queues.
      host.queue().ScheduleAt(host.queue().Now(), [&](Us) {
        read_submitted_at = trace.size();
        host.Submit(trace::OpType::kRead, probe_lpn * page, page);
      });
    } else if (txn.source == sched::TxnSource::kHostRead &&
               probe_submitted && probe_read_pos == ~std::size_t{0} &&
               read_submitted_at != ~std::size_t{0}) {
      probe_read_pos = trace.size() - 1;
    }
  });

  ClosedLoopGenerator(host, WriteBurst(ssd, 0.0, 20000)).Run();

  ASSERT_TRUE(probe_submitted) << "workload never produced a GC copy";
  ASSERT_NE(probe_read_pos, ~std::size_t{0}) << "probe read never dispatched";
  for (std::size_t i = read_submitted_at; i < probe_read_pos; ++i) {
    EXPECT_FALSE(sched::IsGc(trace[i]))
        << "GC transaction dispatched at " << i
        << " while a host read was ready (read dispatched at "
        << probe_read_pos << ")";
  }
  EXPECT_GT(host.scheduler().GcDispatchedCount(), 0u);
}

TEST(GcQos, EraseNeverDispatchesBeforeItsCopies) {
  // Per-victim dependency: in the dispatch trace, each gc-erase must come
  // after every gc-copy of the same job (the victim is fully relocated
  // before its erase books the die).
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled));
  const Us prefill_end = Prefill(ssd, 80);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);

  std::vector<FlashTransaction> gc_trace;
  host.scheduler().OnDispatch([&](const FlashTransaction& txn) {
    if (sched::IsGc(txn.source)) gc_trace.push_back(txn);
  });
  ClosedLoopGenerator(host, WriteBurst(ssd, 0.1, 30000)).Run();

  ASSERT_FALSE(gc_trace.empty());
  std::uint64_t erased_jobs = 0;
  for (std::size_t i = 0; i < gc_trace.size(); ++i) {
    if (gc_trace[i].source != sched::TxnSource::kGcErase) continue;
    ++erased_jobs;
    for (std::size_t j = i + 1; j < gc_trace.size(); ++j) {
      EXPECT_NE(gc_trace[j].request_id, gc_trace[i].request_id)
          << "transaction of job " << gc_trace[i].request_id
          << " dispatched after its erase";
    }
  }
  EXPECT_GT(erased_jobs, 0u);
}

TEST(GcQos, ScheduledReadLatencyBeatsInlineUnderGcPressure) {
  // The acceptance shape in miniature: identical mixed request stream over
  // a GC-heavy phase; scheduled routing lets reads overtake queued GC
  // copies, so aggregate read latency strictly improves.
  auto run = [](ftl::GcRouting routing) {
    ssd::Ssd ssd(QosConfig(ssd::FtlKind::kConventional, routing));
    const Us prefill_end = Prefill(ssd, 80);
    HostInterface host(ssd, HostConfig{});
    host.AdvanceTo(prefill_end);
    const LoadStats load =
        ClosedLoopGenerator(host, WriteBurst(ssd, 0.5, 40000)).Run();
    return std::tuple{load.read_latency.total_us(),
                      load.read_latency.p99_us(),
                      ssd.ftl().stats().gc_erases};
  };
  const auto inline_run = run(ftl::GcRouting::kInline);
  const auto sched_run = run(ftl::GcRouting::kScheduled);
  EXPECT_GT(std::get<2>(inline_run), 0u);
  EXPECT_GT(std::get<2>(sched_run), 0u);
  EXPECT_LT(std::get<0>(sched_run), std::get<0>(inline_run));
  EXPECT_LT(std::get<1>(sched_run), std::get<1>(inline_run));
}

TEST(GcQos, ScheduledRoutingDeterministicAcrossRuns) {
  auto run = [] {
    ssd::Ssd ssd(QosConfig(ssd::FtlKind::kPpb, ftl::GcRouting::kScheduled));
    const Us prefill_end = Prefill(ssd, 80);
    HostInterface host(ssd, HostConfig{});
    host.AdvanceTo(prefill_end);
    const LoadStats load =
        ClosedLoopGenerator(host, WriteBurst(ssd, 0.3, 20000)).Run();
    return std::tuple{load.end_us, load.read_latency.total_us(),
                      load.write_latency.total_us(),
                      ssd.ftl().stats().gc_erases,
                      ssd.ftl().stats().gc_page_copies,
                      ssd.ftl().stats().gc_stale_copies,
                      host.scheduler().ReadPreemptionsOfGc()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(GcQos, ScheduledRoutingRejectsServiceTimeDevice) {
  // Scheduled GC arbitrates against die occupancy; a service-time device
  // has none, so every latency it reported would silently be garbage.
  auto cfg = QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled);
  cfg.timing_mode = ftl::TimingMode::kServiceTime;
  EXPECT_THROW(ssd::Ssd{cfg}, std::invalid_argument);
}

TEST(GcQos, ChargeGcToWriteIsInlineOnly) {
  // Foreground-GC accounting models the inline path stalling the
  // triggering write; with scheduled routing it would be a silent no-op.
  auto cfg = QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled);
  cfg.ftl.charge_gc_to_write = true;
  EXPECT_THROW(cfg.ftl.Validate(), std::invalid_argument);
}

TEST(GcQos, SecondGcSchedulerRejectedWhileFirstAttached) {
  // One GC sink at a time: a second scheduler's destructor would wipe plan
  // state the first still depends on.  Sequential replacement stays legal.
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled));
  {
    HostInterface host(ssd, HostConfig{});
    EXPECT_THROW((HostInterface{ssd, HostConfig{}}), std::logic_error);
  }
  EXPECT_NO_THROW((HostInterface{ssd, HostConfig{}}));
}

TEST(GcQos, ScheduledGcTimeBoundedByMakespan) {
  // Scheduled transactions overlap on the die timelines; gc_time_us counts
  // the union of their busy intervals, so it can never exceed the run's
  // makespan (summing per-transaction waits used to blow well past it).
  ssd::Ssd ssd(QosConfig(ssd::FtlKind::kConventional, ftl::GcRouting::kScheduled));
  const Us prefill_end = Prefill(ssd, 80);
  HostInterface host(ssd, HostConfig{});
  host.AdvanceTo(prefill_end);
  const LoadStats load =
      ClosedLoopGenerator(host, WriteBurst(ssd, 0.2, 30000)).Run();
  EXPECT_GT(ssd.ftl().stats().gc_erases, 0u);
  EXPECT_GT(ssd.ftl().stats().gc_time_us, 0u);
  EXPECT_LE(ssd.ftl().stats().gc_time_us, load.end_us);
}

}  // namespace
}  // namespace ctflash::host
