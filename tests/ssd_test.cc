#include "ssd/ssd.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::ssd {
namespace {

TEST(SsdConfig, Table1MatchesPaper) {
  const auto cfg = Table1Config();
  // Table 1 rows, verbatim.
  const double gib =
      static_cast<double>(cfg.geometry.TotalBytes()) / (1ull << 30);
  EXPECT_NEAR(gib, 64.0, 1.0);                       // Flash size 64 GBs
  EXPECT_EQ(cfg.geometry.page_size_bytes, 16384u);   // Page size 16 KBs
  EXPECT_EQ(cfg.geometry.pages_per_block, 384u);     // Pages per block
  EXPECT_EQ(cfg.timing.page_program_us, 600);        // Write latency 600 us
  EXPECT_EQ(cfg.timing.page_read_us, 49);            // Read latency 49 us
  EXPECT_DOUBLE_EQ(cfg.timing.transfer_mb_per_s, 533.0);  // 533 Mbps
  EXPECT_EQ(cfg.timing.block_erase_us, 4000);        // Erase 4 ms
}

TEST(SsdConfig, ScaledConfigShrinksDevice) {
  const auto cfg = ScaledConfig(FtlKind::kPpb, 1ull << 30, 8 * 1024, 3.0);
  EXPECT_EQ(cfg.kind, FtlKind::kPpb);
  EXPECT_EQ(cfg.geometry.page_size_bytes, 8u * 1024);
  EXPECT_DOUBLE_EQ(cfg.timing.speed_ratio, 3.0);
  EXPECT_GE(cfg.geometry.TotalBytes(), 1ull << 30);
  EXPECT_LT(cfg.geometry.TotalBytes(), 2ull << 30);
}

TEST(SsdConfig, ValidationPropagates) {
  auto cfg = ScaledConfig(FtlKind::kConventional, 1ull << 28, 16 * 1024, 2.0);
  cfg.timing.speed_ratio = 0.1;
  EXPECT_THROW(Ssd{cfg}, std::invalid_argument);
  cfg = ScaledConfig(FtlKind::kConventional, 1ull << 28, 16 * 1024, 2.0);
  cfg.endurance_pe_cycles = 0;
  EXPECT_THROW(Ssd{cfg}, std::invalid_argument);
}

TEST(Ssd, ConventionalFacadeBasics) {
  const auto cfg = ScaledConfig(FtlKind::kConventional, 1ull << 28, 16 * 1024, 2.0);
  Ssd ssd(cfg);
  EXPECT_EQ(ssd.FtlName(), "conventional-ftl");
  EXPECT_EQ(ssd.ppb(), nullptr);
  EXPECT_GT(ssd.LogicalBytes(), 0u);
  const auto w = ssd.Write(0, 16 * 1024, 0);
  EXPECT_GT(w.LatencyUs(), 0);
  const auto r = ssd.Read(0, 16 * 1024, w.completion_us);
  EXPECT_GT(r.LatencyUs(), 0);
}

TEST(Ssd, PpbFacadeExposesStrategy) {
  const auto cfg = ScaledConfig(FtlKind::kPpb, 1ull << 28, 16 * 1024, 2.0);
  Ssd ssd(cfg);
  EXPECT_EQ(ssd.FtlName(), "ppb-ftl");
  ASSERT_NE(ssd.ppb(), nullptr);
  ssd.Write(0, 4096, 0);  // sub-page -> hot
  EXPECT_EQ(ssd.ppb()->ppb_stats().hot_area_writes, 1u);
}

TEST(Ssd, KindNames) {
  EXPECT_STREQ(FtlKindName(FtlKind::kConventional), "conventional");
  EXPECT_STREQ(FtlKindName(FtlKind::kPpb), "ppb");
}

}  // namespace
}  // namespace ctflash::ssd
