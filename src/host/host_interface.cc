#include "host/host_interface.h"

#include <stdexcept>
#include <utility>

#include "obs/tracer.h"
#include "util/logging.h"

namespace ctflash::host {

void HostConfig::Validate() const {
  if (num_queues == 0) {
    throw std::invalid_argument("HostConfig: num_queues must be > 0");
  }
  if (queue_capacity == 0) {
    throw std::invalid_argument("HostConfig: queue_capacity must be > 0");
  }
  if (device_slots == 0) {
    throw std::invalid_argument("HostConfig: device_slots must be > 0");
  }
  if (gc_aging_limit == 0) {
    throw std::invalid_argument("HostConfig: gc_aging_limit must be > 0");
  }
  // write_aging_limit = 0 is the documented "disabled" setting.
  if (qos.Enabled()) {
    if (policy != SchedPolicy::kOutOfOrder) {
      throw std::invalid_argument(
          "HostConfig: multi-tenant QoS requires SchedPolicy::kOutOfOrder "
          "(FIFO dispatch cannot express weights)");
    }
    qos.Validate(num_queues);
  }
}

HostInterface::HostInterface(ssd::Ssd& ssd, const HostConfig& config)
    : ssd_(ssd),
      config_(config),
      tenants_(config.qos.Enabled() ? std::make_unique<qos::TenantTable>(
                                          config.qos, config.num_queues)
                                    : nullptr),
      scheduler_(ssd, queue_, config.policy, config.device_slots,
                 config.gc_aging_limit, config.write_aging_limit,
                 tenants_.get()),
      queue_fill_(config.num_queues, 0) {
  config_.Validate();
  if (tenants_) {
    pace_queues_.resize(tenants_->TenantCount());
    tenant_rr_.resize(tenants_->TenantCount(), 0);
    tenant_backlogs_.resize(tenants_->TenantCount());
  }
  stats_.per_queue.resize(config_.num_queues);
  scheduler_.OnTxnComplete(
      [this](const FlashTransaction& txn, const ftl::RequestResult& result) {
        OnTxnComplete(txn, result);
      });
}

void HostInterface::AttachTracer(obs::Tracer* tracer) {
  if (tracer_ != nullptr) {
    scheduler_.DetachObserver(tracer_);
    ssd_.target().AttachMediaHook(nullptr);
  }
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    scheduler_.AttachObserver(tracer_);
    ssd_.target().AttachMediaHook(tracer_);
  }
}

std::uint64_t HostInterface::Submit(trace::OpType op,
                                    std::uint64_t offset_bytes,
                                    std::uint64_t size_bytes,
                                    CompletionCallback cb) {
  if (tenants_) {
    // Tenant-less submissions in multi-tenant mode are attributed to
    // tenant 0 so they still obey its limits and weights.
    return SubmitAs(0, op, offset_bytes, size_bytes, std::move(cb));
  }
  HostRequest request;
  request.id = next_id_++;
  request.op = op;
  request.offset_bytes = offset_bytes;
  request.size_bytes = size_bytes;
  request.submit_us = queue_.Now();
  stats_.submitted++;
  if (tracer_ != nullptr) {
    tracer_->OnSubmit(request.id, op == trace::OpType::kRead, qos::kNoTenant,
                      request.submit_us);
  }

  // Round-robin queue placement; fall through to the first queue with a
  // free slot so one hot queue does not block an idle device.
  const std::uint32_t start = rr_next_queue_;
  rr_next_queue_ = (rr_next_queue_ + 1) % config_.num_queues;
  for (std::uint32_t probe = 0; probe < config_.num_queues; ++probe) {
    const std::uint32_t qid = (start + probe) % config_.num_queues;
    if (queue_fill_[qid] < config_.queue_capacity) {
      Admit(request, qid, std::move(cb));
      return request.id;
    }
  }
  stats_.backlogged++;
  if (tracer_ != nullptr) tracer_->OnBacklogged(request.id);
  backlog_.emplace_back(request, std::move(cb));
  return request.id;
}

void HostInterface::SubmitAt(Us at, trace::OpType op,
                             std::uint64_t offset_bytes,
                             std::uint64_t size_bytes, CompletionCallback cb) {
  queue_.ScheduleAt(at, [this, op, offset_bytes, size_bytes,
                         cb = std::move(cb)](Us) mutable {
    Submit(op, offset_bytes, size_bytes, std::move(cb));
  });
}

std::uint64_t HostInterface::SubmitAs(qos::TenantId tenant, trace::OpType op,
                                      std::uint64_t offset_bytes,
                                      std::uint64_t size_bytes,
                                      CompletionCallback cb) {
  if (!tenants_) {
    throw std::logic_error("HostInterface: SubmitAs without tenants");
  }
  if (tenant >= tenants_->TenantCount()) {
    throw std::out_of_range("HostInterface: unknown tenant " +
                            std::to_string(tenant));
  }
  HostRequest request;
  request.id = next_id_++;
  request.op = op;
  request.offset_bytes = offset_bytes;
  request.size_bytes = size_bytes;
  request.submit_us = queue_.Now();
  stats_.submitted++;
  if (tracer_ != nullptr) {
    tracer_->OnSubmit(request.id, op == trace::OpType::kRead, tenant,
                      request.submit_us);
  }
  auto& tstats = tenants_->StatsOf(tenant);
  tstats.submitted++;
  if (tstats.first_submit_us < 0) tstats.first_submit_us = request.submit_us;

  if (tenants_->Limited(tenant)) {
    auto& pace = pace_queues_[tenant];
    if (!pace.empty()) {
      // FIFO behind earlier throttled work; its wake event is already
      // armed and will drain this request in turn.
      tstats.throttled++;
      if (tracer_ != nullptr) tracer_->OnThrottled(request.id);
      pace.emplace_back(request, std::move(cb));
      return request.id;
    }
    const Us now = queue_.Now();
    const Us at = tenants_->AdmissionAt(tenant, now, size_bytes);
    if (at > now) {
      tstats.throttled++;
      if (tracer_ != nullptr) tracer_->OnThrottled(request.id);
      pace.emplace_back(request, std::move(cb));
      queue_.ScheduleAt(at, [this, tenant](Us) { PumpPaceQueue(tenant); });
      return request.id;
    }
    tenants_->ChargeAdmission(tenant, now, size_bytes);
  }
  PlaceTenantRequest(tenant, request, std::move(cb));
  return request.id;
}

void HostInterface::SubmitAtAs(Us at, qos::TenantId tenant, trace::OpType op,
                               std::uint64_t offset_bytes,
                               std::uint64_t size_bytes,
                               CompletionCallback cb) {
  queue_.ScheduleAt(at, [this, tenant, op, offset_bytes, size_bytes,
                         cb = std::move(cb)](Us) mutable {
    SubmitAs(tenant, op, offset_bytes, size_bytes, std::move(cb));
  });
}

void HostInterface::PumpPaceQueue(qos::TenantId tenant) {
  auto& pace = pace_queues_[tenant];
  while (!pace.empty()) {
    const Us now = queue_.Now();
    const Us at =
        tenants_->AdmissionAt(tenant, now, pace.front().first.size_bytes);
    if (at > now) {
      queue_.ScheduleAt(at, [this, tenant](Us) { PumpPaceQueue(tenant); });
      return;
    }
    auto [request, cb] = std::move(pace.front());
    pace.pop_front();
    tenants_->ChargeAdmission(tenant, now, request.size_bytes);
    tenants_->StatsOf(tenant).throttle_wait_us += now - request.submit_us;
    PlaceTenantRequest(tenant, std::move(request), std::move(cb));
  }
}

void HostInterface::PlaceTenantRequest(qos::TenantId tenant,
                                       HostRequest request,
                                       CompletionCallback cb) {
  // Round-robin within the tenant's own queues with fall-through, the
  // tenant-local analogue of the global placement in Submit.
  const auto& queues = tenants_->ConfigOf(tenant).queues;
  const std::uint32_t count = static_cast<std::uint32_t>(queues.size());
  const std::uint32_t start = tenant_rr_[tenant];
  tenant_rr_[tenant] = (start + 1) % count;
  for (std::uint32_t probe = 0; probe < count; ++probe) {
    const std::uint32_t qid = queues[(start + probe) % count];
    if (queue_fill_[qid] < config_.queue_capacity) {
      Admit(std::move(request), qid, std::move(cb));
      return;
    }
  }
  stats_.backlogged++;
  if (tracer_ != nullptr) tracer_->OnBacklogged(request.id);
  tenant_backlogs_[tenant].emplace_back(std::move(request), std::move(cb));
}

void HostInterface::Admit(HostRequest request, std::uint32_t qid,
                          CompletionCallback cb) {
  queue_fill_[qid]++;
  outstanding_++;
  stats_.per_queue[qid].admitted++;
  if (tracer_ != nullptr) tracer_->OnAdmit(request.id, qid, queue_.Now());
  const qos::TenantId tenant =
      tenants_ ? tenants_->TenantOfQueue(qid) : qos::kNoTenant;

  // Clip into the exported logical space (wrapped traces), mirroring the
  // trace-replay harness.
  const std::uint64_t logical = ssd_.LogicalBytes();
  std::uint64_t offset = request.offset_bytes;
  std::uint64_t size = request.size_bytes;
  if (offset >= logical) offset %= logical;
  if (offset + size > logical) size = logical - offset;

  Pending pending;
  pending.request = request;
  pending.qid = qid;
  pending.cb = std::move(cb);

  if (size == 0) {
    // Clipped away entirely: carries no flash work, completes instantly —
    // still via the event queue so callback ordering stays deterministic.
    pending.completion_us = queue_.Now();
    pending_.emplace(request.id, std::move(pending));
    queue_.ScheduleAt(queue_.Now(),
                      [this, id = request.id](Us) { FinalizeRequest(id); });
    return;
  }

  const std::uint32_t page = ssd_.config().geometry.page_size_bytes;
  const Lpn first = offset / page;
  const Lpn last = (offset + size - 1) / page;
  pending.pages = static_cast<std::uint32_t>(last - first + 1);
  pending.pages_left = pending.pages;
  pending_.emplace(request.id, std::move(pending));

  for (Lpn lpn = first; lpn <= last; ++lpn) {
    const std::uint64_t page_start = lpn * page;
    const std::uint64_t lo = std::max<std::uint64_t>(page_start, offset);
    const std::uint64_t hi =
        std::min<std::uint64_t>(page_start + page, offset + size);
    FlashTransaction txn;
    txn.request_id = request.id;
    txn.source = request.op == trace::OpType::kRead
                     ? sched::TxnSource::kHostRead
                     : sched::TxnSource::kHostWrite;
    txn.tenant = tenant;
    txn.offset_bytes = lo;
    txn.size_bytes = hi - lo;
    txn.lpn = lpn;
    scheduler_.Enqueue(txn);  // the scheduler stamps the intake seq
  }
}

void HostInterface::OnTxnComplete(const FlashTransaction& txn,
                                  const ftl::RequestResult& result) {
  auto it = pending_.find(txn.request_id);
  CTFLASH_CHECK(it != pending_.end());
  Pending& pending = it->second;
  stats_.transactions_completed++;
  if (result.completion_us > pending.completion_us) {
    pending.completion_us = result.completion_us;
  }
  CTFLASH_CHECK(pending.pages_left > 0);
  if (--pending.pages_left == 0) FinalizeRequest(txn.request_id);
}

void HostInterface::FinalizeRequest(std::uint64_t id) {
  auto it = pending_.find(id);
  CTFLASH_CHECK(it != pending_.end());
  // Move out before erasing: the callback and the backlog admission below
  // may submit new requests and mutate pending_.
  Pending pending = std::move(it->second);
  pending_.erase(it);

  outstanding_--;
  queue_fill_[pending.qid]--;
  stats_.completed++;
  HostCompletion completion;
  completion.request = pending.request;
  completion.completion_us = pending.completion_us;
  completion.pages = pending.pages;
  if (tracer_ != nullptr) {
    tracer_->OnRequestComplete(id, completion.completion_us);
  }
  const bool is_read = pending.request.op == trace::OpType::kRead;
  const Us latency_us = completion.LatencyUs();
  (is_read ? stats_.read_latency : stats_.write_latency).Add(latency_us);
  QueueStats& qstats = stats_.per_queue[pending.qid];
  qstats.completed++;
  qstats.bytes_completed += pending.request.size_bytes;
  (is_read ? qstats.read_latency : qstats.write_latency).Add(latency_us);

  if (tenants_) {
    const qos::TenantId tenant = tenants_->TenantOfQueue(pending.qid);
    auto& tstats = tenants_->StatsOf(tenant);
    tstats.completed++;
    tstats.bytes_completed += pending.request.size_bytes;
    (is_read ? tstats.read_latency : tstats.write_latency).Add(latency_us);
    if (completion.completion_us > tstats.last_completion_us) {
      tstats.last_completion_us = completion.completion_us;
    }
    // The freed slot belongs to this tenant's queue: its backlog refills it.
    auto& backlog = tenant_backlogs_[tenant];
    if (!backlog.empty()) {
      auto [request, cb] = std::move(backlog.front());
      backlog.pop_front();
      Admit(std::move(request), pending.qid, std::move(cb));
    }
  } else if (!backlog_.empty()) {
    auto [request, cb] = std::move(backlog_.front());
    backlog_.pop_front();
    Admit(std::move(request), pending.qid, std::move(cb));
  }
  if (pending.cb) pending.cb(completion);
}

}  // namespace ctflash::host
