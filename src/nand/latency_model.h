// Asymmetric page-access latency model for 3D charge-trap NAND.
//
// The liquid-chemical etch that punches vertical channels leaves a wider
// opening at the top gate-stack layer and a narrower one at the bottom, so
// the electric field — and hence program/read speed — grows toward the
// bottom (paper Section 2.1, refs [9][8]).  The paper's footnote 1: bottom
// layer is typically 2x to 5x faster than the top.
//
// Model: let d = layer / (num_layers - 1) in [0, 1] (0 = top, 1 = bottom)
// and R = speed_ratio (top latency / bottom latency).  Then
//     latency(layer) = base * (1 - d * (1 - 1/R))
// so layer 0 runs at `base` (Table 1 values) and the bottom layer at
// base / R, with linear field-strength interpolation between.
#pragma once

#include <cstdint>

#include "nand/geometry.h"
#include "util/types.h"

namespace ctflash::nand {

/// Timing constants; defaults reproduce the paper's Table 1 (Samsung V-NAND).
struct NandTiming {
  Us page_read_us = 49;       ///< slowest-page (top layer) read latency
  Us page_program_us = 600;   ///< page program latency
  Us block_erase_us = 4000;   ///< block erase time (4 ms)
  double transfer_mb_per_s = 533.0;  ///< bus rate ("533 Mbps" per pin, x8 bus)
  double speed_ratio = 2.0;   ///< top/bottom latency ratio R in [1, ...)
  /// Whether program time also scales with the layer.  Real controllers
  /// normalize program time through the ISPP pulse schedule, and the paper's
  /// write-latency deltas (0.0001 %) are only consistent with layer-
  /// independent programs; the field-strength asymmetry manifests in read
  /// sensing.  Kept as an option for sensitivity studies.
  bool program_layer_dependent = false;

  void Validate() const;
};

class LatencyModel {
 public:
  LatencyModel(const NandGeometry& geometry, const NandTiming& timing);

  /// Multiplier in (0, 1] applied to base latency for a page; 1.0 at the top
  /// layer, 1/R at the bottom layer.
  double SpeedFactor(std::uint32_t page_in_block) const;

  Us ReadUs(std::uint32_t page_in_block) const;
  Us ProgramUs(std::uint32_t page_in_block) const;
  Us EraseUs() const { return timing_.block_erase_us; }

  /// Bus time to move `bytes` over the channel.
  Us TransferUs(std::uint64_t bytes) const;

  /// Mean read/program latency over all pages of a block (used by tests and
  /// for back-of-envelope checks in benches).
  double MeanReadUs() const;
  double MeanProgramUs() const;

  const NandGeometry& geometry() const { return geometry_; }
  const NandTiming& timing() const { return timing_; }

 private:
  NandGeometry geometry_;
  NandTiming timing_;
};

}  // namespace ctflash::nand
