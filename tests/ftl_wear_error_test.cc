// Wear-leveling policy and read-error-model integration tests.
#include <gtest/gtest.h>

#include "ftl/conventional_ftl.h"
#include "ftl/wear_leveler.h"
#include "ssd/experiment.h"
#include "trace/synthetic.h"
#include "util/random.h"

namespace ctflash::ftl {
namespace {

nand::NandGeometry Geo() {
  nand::NandGeometry g;
  g.channels = 1;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 32;
  g.pages_per_block = 16;
  g.page_size_bytes = 4096;
  g.num_layers = 16;
  return g;
}

TEST(WearLeveler, DisabledNeverOverrides) {
  nand::NandDevice nand(Geo(), nand::NandTiming{});
  BlockManager blocks(32, 16);
  WearLeveler wl(WearLevelerConfig{});  // threshold 0 = off
  // Create a huge wear spread.
  for (int i = 0; i < 100; ++i) nand.Erase(0);
  EXPECT_FALSE(wl.MaybeOverrideVictim(blocks, nand).has_value());
}

TEST(WearLeveler, WearSpreadComputation) {
  nand::NandDevice nand(Geo(), nand::NandTiming{});
  EXPECT_EQ(WearLeveler::WearSpread(nand), 0u);
  nand.Erase(3);
  nand.Erase(3);
  nand.Erase(7);
  EXPECT_EQ(WearLeveler::WearSpread(nand), 2u);
}

TEST(WearLeveler, OverridesToLeastWornFullBlock) {
  nand::NandDevice nand(Geo(), nand::NandTiming{});
  BlockManager blocks(32, 16);
  WearLevelerConfig cfg;
  cfg.delta_threshold = 5;
  WearLeveler wl(cfg);
  // Wear block 0 well past the threshold; make blocks 2 and 3 FULL with
  // different wear.
  for (int i = 0; i < 10; ++i) nand.Erase(0);
  nand.Erase(2);
  nand.Erase(2);
  nand.Erase(3);
  for (BlockId b : {BlockId{2}, BlockId{3}}) {
    ASSERT_TRUE(blocks.AllocateBlock().has_value());
    (void)b;
  }
  blocks.MarkFull(0);  // ids 0,1 were allocated first
  blocks.MarkFull(1);
  // Full blocks are 0 (pe=10) and 1 (pe=0): override picks block 1.
  const auto v = wl.MaybeOverrideVictim(blocks, nand);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1u);
  EXPECT_EQ(wl.override_count(), 1u);
}

TEST(WearLeveler, NoOverrideBelowThreshold) {
  nand::NandDevice nand(Geo(), nand::NandTiming{});
  BlockManager blocks(32, 16);
  WearLevelerConfig cfg;
  cfg.delta_threshold = 5;
  WearLeveler wl(cfg);
  nand.Erase(0);  // spread 1 <= 5
  blocks.AllocateBlock();
  blocks.MarkFull(0);
  EXPECT_FALSE(wl.MaybeOverrideVictim(blocks, nand).has_value());
}

TEST(WearLeveler, BoundsWearSpreadEndToEnd) {
  // Hammer a tiny logical range: without WL the same spare blocks cycle and
  // wear diverges from the never-rewritten cold blocks; with WL the spread
  // stays near the threshold.
  auto run = [&](std::uint32_t threshold) {
    FlashTarget target(Geo(), nand::NandTiming{});
    FtlConfig cfg;
    cfg.op_ratio = 0.25;
    cfg.gc_threshold_low = 3;
    cfg.gc_threshold_high = 5;
    cfg.wear.delta_threshold = threshold;
    ConventionalFtl ftl(target, cfg);
    // Fill everything once (cold data), then hammer the first 32 pages.
    Us now = 0;
    for (std::uint64_t off = 0; off + 4096 <= ftl.LogicalBytes(); off += 4096) {
      now = ftl.Write(off, 4096, now).completion_us;
    }
    util::Xoshiro256StarStar rng(1);
    for (int i = 0; i < 8000; ++i) {
      now = ftl.Write(rng.UniformBelow(32) * 4096, 4096, now).completion_us;
    }
    return WearLeveler::WearSpread(target.nand());
  };
  const std::uint32_t spread_off = run(0);
  const std::uint32_t spread_on = run(8);
  EXPECT_GT(spread_off, 20u);  // hot spare pool cycles, cold blocks rest
  // Dual-pool allocation + threshold swaps keep the spread near the
  // threshold even under this pathological all-hot workload.
  EXPECT_LE(spread_on, 2u * 8u);
}

TEST(ReadErrorModel, CountsSampledReadsThroughTheStack) {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kPpb, 1ull << 28, 16 * 1024, 2.0);
  cfg.model_read_errors = true;
  ssd::Ssd ssd(cfg);
  ssd::ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes() / 2);
  const auto wl = trace::WebServerWorkload(ssd.LogicalBytes() / 2, 5000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  runner.Replay(recs, wl.name);
  const auto& es = ssd.target().read_error_stats();
  EXPECT_GT(es.sampled_reads, 0u);
  // Fresh device at default RBER: everything correctable.
  EXPECT_EQ(es.uncorrectable_reads, 0u);
}

TEST(ReadErrorModel, HighRberBecomesUncorrectable) {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 1ull << 28,
                               16 * 1024, 2.0);
  cfg.model_read_errors = true;
  cfg.error_model.base_rber = 0.01;  // hopeless medium
  ssd::Ssd ssd(cfg);
  ssd.Write(0, 16 * 1024, 0);
  ssd.Read(0, 16 * 1024, 1000);
  const auto& es = ssd.target().read_error_stats();
  EXPECT_EQ(es.sampled_reads, 1u);
  EXPECT_EQ(es.uncorrectable_reads, 1u);
  EXPECT_GT(es.MeanBitErrorsPerRead(), 100.0);
}

TEST(ReadErrorModel, DeterministicForSeed) {
  auto make = [] {
    auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 1ull << 28,
                                 16 * 1024, 2.0);
    cfg.model_read_errors = true;
    cfg.error_model.base_rber = 1e-4;
    return cfg;
  };
  std::uint64_t bits[2];
  for (int k = 0; k < 2; ++k) {
    ssd::Ssd ssd(make());
    Us now = 0;
    now = ssd.Write(0, 256 * 1024, now).completion_us;
    for (int i = 0; i < 50; ++i) {
      now = ssd.Read(0, 256 * 1024, now).completion_us;
    }
    bits[k] = ssd.target().read_error_stats().total_bit_errors;
  }
  EXPECT_EQ(bits[0], bits[1]);
  EXPECT_GT(bits[0], 0u);
}

TEST(ReadErrorModel, SplitsHostAndGcAttribution) {
  // Host-issued reads and GC relocation source reads land in separate
  // counters, and together they account for every page the stack read.
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kPpb, 1ull << 28, 16 * 1024, 2.0);
  cfg.model_read_errors = true;
  ssd::Ssd ssd(cfg);
  ssd::ExperimentRunner runner(ssd);
  // Map every LPN so each host read page samples the medium exactly once.
  runner.Prefill(ssd.LogicalBytes());
  const auto wl = trace::WebServerWorkload(ssd.LogicalBytes(), 20000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  runner.Replay(recs, wl.name);
  const auto& host = ssd.target().read_error_stats();
  const auto& gc = ssd.target().gc_read_error_stats();
  const auto& st = ssd.ftl().stats();
  // Overwrite churn on a 100%-full device must have forced relocations.
  ASSERT_GT(st.gc_page_copies, 0u);
  // Conservation: one host sample per host read page, one GC sample per
  // relocation — nothing double-counted, nothing dropped.
  EXPECT_EQ(host.sampled_reads, st.host_read_pages);
  EXPECT_EQ(gc.sampled_reads, st.gc_page_copies);
  EXPECT_GT(host.sampled_reads, 0u);
}

TEST(ReadErrorModel, ValidationThroughSsdConfig) {
  auto cfg = ssd::ScaledConfig(ssd::FtlKind::kConventional, 1ull << 28,
                               16 * 1024, 2.0);
  cfg.model_read_errors = true;
  cfg.error_model.base_rber = 2.0;  // invalid
  EXPECT_THROW(ssd::Ssd{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace ctflash::ftl
