// Campaign JSON module + spec expansion tests.
#include <cstdint>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "campaign/json.h"
#include "campaign/spec.h"
#include "ssd/ssd.h"

namespace ctflash::campaign {
namespace {

// --- Json ------------------------------------------------------------------

TEST(CampaignJson, ParsesScalarsAndContainers) {
  const Json v = Json::Parse(
      R"({"a": 1, "b": -2.5, "c": "sA", "d": [true, false, null], "e": {}})");
  EXPECT_EQ(v.Get("a")->AsUint(), 1u);
  EXPECT_DOUBLE_EQ(v.Get("b")->AsDouble(), -2.5);
  EXPECT_EQ(v.Get("c")->AsString(), "sA");
  ASSERT_TRUE(v.Get("d")->IsArray());
  EXPECT_EQ(v.Get("d")->AsArray().size(), 3u);
  EXPECT_TRUE(v.Get("d")->AsArray()[2].IsNull());
  EXPECT_TRUE(v.Get("e")->IsObject());
}

TEST(CampaignJson, DumpIsDeterministicSortedKeys) {
  Json v;
  v["zebra"] = 1;
  v["alpha"] = 2;
  v["mid"] = Json(JsonArray{Json(1), Json(2)});
  EXPECT_EQ(v.Dump(), R"({"alpha":2,"mid":[1,2],"zebra":1})");
}

TEST(CampaignJson, NumbersRoundTripThroughDump) {
  // Integers up to 2^53 print as integers; doubles print round-trippably.
  Json v;
  v["big"] = std::uint64_t{9'007'199'254'740'991};  // 2^53 - 1
  v["frac"] = 0.1;
  v["neg"] = -17;
  const Json back = Json::Parse(v.Dump());
  EXPECT_EQ(back.Get("big")->AsUint(), 9'007'199'254'740'991u);
  EXPECT_DOUBLE_EQ(back.Get("frac")->AsDouble(), 0.1);
  EXPECT_EQ(back.Get("neg")->AsInt(), -17);
  EXPECT_EQ(Json::Parse(back.Dump()).Dump(), back.Dump());
}

TEST(CampaignJson, RejectsMalformedInputWithPosition) {
  try {
    Json::Parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
    FAIL() << "duplicate key accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
  try {
    Json::Parse("{\"a\": }");
    FAIL() << "malformed value accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
  }
  EXPECT_THROW(Json::Parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(Json::Parse(""), std::runtime_error);
}

TEST(CampaignJson, MergePatchFollowsRfc7386) {
  const Json base = Json::Parse(R"({"a": {"x": 1, "y": 2}, "b": 3, "c": 4})");
  const Json patch = Json::Parse(R"({"a": {"y": 9}, "b": null, "d": 5})");
  const Json merged = MergePatch(base, patch);
  EXPECT_EQ(merged.Get("a")->Get("x")->AsUint(), 1u);  // untouched sibling
  EXPECT_EQ(merged.Get("a")->Get("y")->AsUint(), 9u);  // recursed override
  EXPECT_EQ(merged.Get("b"), nullptr);                 // null deletes
  EXPECT_EQ(merged.Get("c")->AsUint(), 4u);
  EXPECT_EQ(merged.Get("d")->AsUint(), 5u);
}

TEST(CampaignJson, SetJsonPathCreatesIntermediates) {
  Json root;
  SetJsonPath(root, "workload.queue_depth", Json(std::uint64_t{16}));
  SetJsonPath(root, "workload.read_fraction", Json(0.5));
  EXPECT_EQ(root.Get("workload")->Get("queue_depth")->AsUint(), 16u);
  EXPECT_DOUBLE_EQ(root.Get("workload")->Get("read_fraction")->AsDouble(), 0.5);
  EXPECT_THROW(SetJsonPath(root, "a..b", Json(1)), std::runtime_error);
}

// --- CampaignSpec ----------------------------------------------------------

constexpr const char* kBaseSpec = R"({
  "campaign": "test",
  "workers": 3,
  "defaults": {
    "device_bytes": "32MiB",
    "seed": 100,
    "workload": {"kind": "closed_loop", "requests": 50}
  },
  "grid": {
    "ftl": ["conventional", "ppb"],
    "workload.queue_depth": [2, 8]
  }
})";

TEST(CampaignSpec, ExpandsGridInSortedOdometerOrder) {
  const CampaignSpec spec = CampaignSpec::Parse(kBaseSpec);
  EXPECT_EQ(spec.name, "test");
  EXPECT_EQ(spec.workers, 3u);
  ASSERT_EQ(spec.arms.size(), 4u);
  // Sorted grid keys: "ftl" varies slowest, "workload.queue_depth" fastest.
  EXPECT_EQ(spec.arms[0].name, "ftl=conventional,workload.queue_depth=2");
  EXPECT_EQ(spec.arms[1].name, "ftl=conventional,workload.queue_depth=8");
  EXPECT_EQ(spec.arms[2].name, "ftl=ppb,workload.queue_depth=2");
  EXPECT_EQ(spec.arms[3].name, "ftl=ppb,workload.queue_depth=8");
  EXPECT_EQ(spec.arms[0].device.kind, ssd::FtlKind::kConventional);
  EXPECT_EQ(spec.arms[2].device.kind, ssd::FtlKind::kPpb);
  EXPECT_EQ(spec.arms[1].merged.Get("workload")->Get("queue_depth")->AsUint(),
            8u);
}

TEST(CampaignSpec, AutoSeedDecorrelatesArms) {
  const CampaignSpec spec = CampaignSpec::Parse(kBaseSpec);
  EXPECT_EQ(spec.arms[0].seed, 100u);
  EXPECT_EQ(spec.arms[1].seed, 101u);
  EXPECT_EQ(spec.arms[3].seed, 103u);
}

TEST(CampaignSpec, ExplicitSeedOverridePinsArm) {
  const CampaignSpec spec = CampaignSpec::Parse(R"({
    "defaults": {"seed": 7, "workload": {"kind": "closed_loop"}},
    "grid": {"seed": [41, 42]}
  })");
  ASSERT_EQ(spec.arms.size(), 2u);
  EXPECT_EQ(spec.arms[0].seed, 41u);
  EXPECT_EQ(spec.arms[1].seed, 42u);
}

TEST(CampaignSpec, ExplicitArmsCrossWithGrid) {
  const CampaignSpec spec = CampaignSpec::Parse(R"({
    "defaults": {"workload": {"kind": "closed_loop"}},
    "grid": {"ftl": ["conventional", "ppb"]},
    "arms": [{"name": "base"}, {"name": "deep", "workload": {"queue_depth": 32}}]
  })");
  ASSERT_EQ(spec.arms.size(), 4u);
  EXPECT_EQ(spec.arms[0].name, "base:ftl=conventional");
  EXPECT_EQ(spec.arms[1].name, "deep:ftl=conventional");
  EXPECT_EQ(spec.arms[1].merged.Get("workload")->Get("queue_depth")->AsUint(),
            32u);
  EXPECT_EQ(spec.arms[3].name, "deep:ftl=ppb");
}

TEST(CampaignSpec, RejectsBadFields) {
  EXPECT_THROW(CampaignSpec::Parse(R"({"workers": 0})"), std::runtime_error);
  EXPECT_THROW(
      CampaignSpec::Parse(
          R"({"defaults": {"ftl": "nvm", "workload": {"kind": "closed_loop"}}})"),
      std::runtime_error);
  EXPECT_THROW(
      CampaignSpec::Parse(
          R"({"defaults": {"prefill_pct": 101, "workload": {"kind": "closed_loop"}}})"),
      std::runtime_error);
  // Workload object is mandatory per arm.
  EXPECT_THROW(CampaignSpec::Parse(R"({"defaults": {}})"), std::runtime_error);
  // Grid axes must be non-empty arrays.
  EXPECT_THROW(
      CampaignSpec::Parse(
          R"({"defaults": {"workload": {"kind": "closed_loop"}}, "grid": {"ftl": []}})"),
      std::runtime_error);
}

TEST(CampaignSpec, ByteSizesAcceptStringsAndNumbers) {
  const CampaignSpec spec = CampaignSpec::Parse(R"({
    "defaults": {"device_bytes": "64MiB", "page_size": 16384,
                  "workload": {"kind": "closed_loop"}}
  })");
  ASSERT_EQ(spec.arms.size(), 1u);
  EXPECT_EQ(spec.arms[0].merged.Get("device_bytes")->AsString(), "64MiB");
  EXPECT_EQ(spec.arms[0].device.geometry.page_size_bytes, 16384u);
}

}  // namespace
}  // namespace ctflash::campaign
