#include "core/ppb_ftl.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/random.h"

namespace ctflash::core {
namespace {

nand::NandGeometry Geo() {
  nand::NandGeometry g;
  g.channels = 2;
  g.chips_per_channel = 1;
  g.dies_per_chip = 1;
  g.planes_per_die = 2;
  g.blocks_per_plane = 16;
  g.pages_per_block = 16;
  g.page_size_bytes = 4096;
  g.num_layers = 16;
  return g;
}

ftl::FtlConfig FtlCfg() {
  ftl::FtlConfig c;
  c.op_ratio = 0.30;
  c.gc_threshold_low = 4;
  c.gc_threshold_high = 6;
  return c;
}

class PpbFtlTest : public ::testing::Test {
 protected:
  PpbFtlTest()
      : target_(Geo(), nand::NandTiming{}),
        ftl_(target_, FtlCfg(), PpbConfig{}) {}
  ftl::FlashTarget target_;
  PpbFtl ftl_;
};

TEST_F(PpbFtlTest, DefaultClassifierIsPageSizeCheck) {
  EXPECT_NE(ftl_.classifier().Name().find("4096"), std::string::npos);
}

TEST_F(PpbFtlTest, SmallWriteRoutedToHotArea) {
  ftl_.Write(0, 2048, 0);  // sub-page -> hot
  EXPECT_EQ(ftl_.ppb_stats().hot_area_writes, 1u);
  EXPECT_EQ(ftl_.ppb_stats().cold_area_writes, 0u);
  EXPECT_EQ(ftl_.LevelOf(0), HotnessLevel::kHot);
  EXPECT_EQ(ftl_.vbm().AreaOfBlock(
                target_.geometry().BlockOf(ftl_.mapping().Lookup(0))),
            Area::kHot);
}

TEST_F(PpbFtlTest, LargeWriteRoutedToColdArea) {
  ftl_.Write(0, 16 * 1024, 0);  // 4 pages -> cold
  EXPECT_EQ(ftl_.ppb_stats().cold_area_writes, 4u);
  EXPECT_EQ(ftl_.LevelOf(0), HotnessLevel::kIcyCold);
  EXPECT_EQ(ftl_.vbm().AreaOfBlock(
                target_.geometry().BlockOf(ftl_.mapping().Lookup(0))),
            Area::kCold);
}

TEST_F(PpbFtlTest, ReadPromotesHotToIronHot) {
  ftl_.Write(0, 2048, 0);
  ASSERT_EQ(ftl_.LevelOf(0), HotnessLevel::kHot);
  ftl_.Read(0, 2048, 100);
  EXPECT_EQ(ftl_.LevelOf(0), HotnessLevel::kIronHot);
  EXPECT_EQ(ftl_.ppb_stats().iron_promotions, 1u);
}

TEST_F(PpbFtlTest, ColdReadsPromoteToColdLevel) {
  ftl_.Write(0, 16 * 1024, 0);
  ASSERT_EQ(ftl_.LevelOf(0), HotnessLevel::kIcyCold);
  ftl_.Read(0, 16 * 1024, 100);
  EXPECT_EQ(ftl_.LevelOf(0), HotnessLevel::kIcyCold);  // one read: not yet
  ftl_.Read(0, 16 * 1024, 200);
  EXPECT_EQ(ftl_.LevelOf(0), HotnessLevel::kCold);  // threshold 2 reached
}

TEST_F(PpbFtlTest, IronUpdateLandsOnFastPagesEventually) {
  // Build an iron-hot entry, then update it; once the hot area has an open
  // fast VB the update must physically land in the fast class.
  Us now = 0;
  ftl_.Write(0, 2048, now);
  ftl_.Read(0, 2048, ++now);  // promote to iron
  // Fill the slow slice so the fast VB opens.
  for (Lpn l = 1; l < 16; ++l) {
    ftl_.Write(l * 4096, 2048, ++now);
  }
  ftl_.Write(0, 2048, ++now);  // iron update
  const Ppn ppn = ftl_.mapping().Lookup(0);
  EXPECT_TRUE(ftl_.vbm().IsFastClassPage(target_.geometry().PageOf(ppn)));
  EXPECT_EQ(ftl_.LevelOf(0), HotnessLevel::kIronHot);
}

TEST_F(PpbFtlTest, LargeRewriteDemotesHotData) {
  ftl_.Write(0, 2048, 0);  // hot
  ASSERT_EQ(ftl_.LevelOf(0), HotnessLevel::kHot);
  ftl_.Write(0, 16 * 1024, 100);  // reclassified by size check
  EXPECT_EQ(ftl_.LevelOf(0), HotnessLevel::kIcyCold);
  EXPECT_EQ(ftl_.hot_area().TierOf(0), TwoLevelLru::Tier::kNone);
}

TEST_F(PpbFtlTest, UnmappedReadInstant) {
  const auto r = ftl_.Read(0, 4096, 42);
  EXPECT_EQ(r.LatencyUs(), 0);
}

TEST_F(PpbFtlTest, WriteLatencyIncludesTransferAndProgram) {
  const auto r = ftl_.Write(0, 4096, 0);
  // 4 KiB transfer (~7.7 us) + 600 us program.
  EXPECT_GE(r.LatencyUs(), 600);
  EXPECT_LE(r.LatencyUs(), 640);
}

TEST_F(PpbFtlTest, GcRunsAndPreservesInvariants) {
  util::Xoshiro256StarStar rng(5);
  Us now = 0;
  const std::uint64_t logical_pages = ftl_.LogicalPages();
  for (int i = 0; i < 6000; ++i) {
    const Lpn lpn = rng.UniformBelow(logical_pages);
    const bool small = rng.Bernoulli(0.6);
    const std::uint64_t size = small ? 2048 : 16 * 1024;
    const std::uint64_t offset = lpn * 4096;
    if (offset + size > ftl_.LogicalBytes()) continue;
    if (rng.Bernoulli(0.5)) {
      now = ftl_.Write(offset, size, now).completion_us;
    } else {
      now = ftl_.Read(offset, size, now).completion_us;
    }
    if (i % 1000 == 0) {
      ASSERT_TRUE(ftl_.CheckInvariants()) << "iter " << i;
    }
  }
  EXPECT_GT(ftl_.stats().gc_erases, 0u);
  EXPECT_TRUE(ftl_.CheckInvariants());
  // Hotness-aware GC migrations happened.
  EXPECT_GT(ftl_.ppb_stats().gc_migrations, 0u);
}

TEST_F(PpbFtlTest, GcDemotesUnmodifiedHotSurvivors) {
  // Write a batch of hot data once (never updated), then churn other lpns
  // until GC collects the survivors: they must leave the hot area.
  Us now = 0;
  for (Lpn l = 0; l < 8; ++l) now = ftl_.Write(l * 4096, 2048, now).completion_us;
  util::Xoshiro256StarStar rng(9);
  for (int i = 0; i < 8000; ++i) {
    const Lpn lpn = 8 + rng.UniformBelow(64);
    now = ftl_.Write(lpn * 4096, 2048, now).completion_us;
  }
  ASSERT_GT(ftl_.stats().gc_erases, 0u);
  // The untouched early lpns should have been demoted out of the hot area
  // by "demote if not modified" during some GC pass.
  int demoted = 0;
  for (Lpn l = 0; l < 8; ++l) {
    if (ftl_.hot_area().TierOf(l) == TwoLevelLru::Tier::kNone) ++demoted;
  }
  EXPECT_GT(demoted, 0);
  EXPECT_GT(ftl_.ppb_stats().cold_demotions, 0u);
}

TEST(PpbConfigTest, Validation) {
  PpbConfig c;
  c.vb_split = 3;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = PpbConfig{};
  c.cold_promote_threshold = 0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
}

TEST(PpbFtlCustomization, ExplicitCapacitiesAndClassifier) {
  ftl::FlashTarget target(Geo(), nand::NandTiming{});
  PpbConfig cfg;
  cfg.hot_lru_capacity = 10;
  cfg.iron_lru_capacity = 5;
  cfg.freq_table_capacity = 20;
  cfg.cold_promote_threshold = 3;
  PpbFtl ftl(target, FtlCfg(), cfg,
             std::make_unique<ConstantClassifier>(true));
  EXPECT_EQ(ftl.hot_area().hot_capacity(), 10u);
  EXPECT_EQ(ftl.hot_area().iron_capacity(), 5u);
  EXPECT_EQ(ftl.cold_area().capacity(), 20u);
  // always-hot classifier: even multi-page writes go to the hot area.
  ftl.Write(0, 16 * 1024, 0);
  EXPECT_EQ(ftl.ppb_stats().hot_area_writes, 4u);
}

TEST(PpbFtlAblation, MigrationOffKeepsLevelsStatic) {
  ftl::FlashTarget target(Geo(), nand::NandTiming{});
  PpbConfig cfg;
  cfg.migrate_on_update = false;
  cfg.migrate_on_gc = false;
  PpbFtl ftl(target, FtlCfg(), cfg);
  Us now = 0;
  ftl.Write(0, 2048, now);
  ftl.Read(0, 2048, ++now);  // promoted in metadata
  // Fill slow slice to open the fast VB, then update: with migration off the
  // update still requests only the hot (slow) class.
  for (Lpn l = 1; l < 16; ++l) ftl.Write(l * 4096, 2048, ++now);
  ftl.Write(0, 2048, ++now);
  const Ppn ppn = ftl.mapping().Lookup(0);
  EXPECT_FALSE(ftl.vbm().IsFastClassPage(target.geometry().PageOf(ppn)));
}

TEST(PpbFtlStrictPairing, WorksEndToEnd) {
  ftl::FlashTarget target(Geo(), nand::NandTiming{});
  PpbConfig cfg;
  cfg.max_open_fast_vbs = 0;  // Algorithm-1 literal mode
  PpbFtl ftl(target, FtlCfg(), cfg);
  util::Xoshiro256StarStar rng(3);
  Us now = 0;
  for (int i = 0; i < 4000; ++i) {
    const Lpn lpn = rng.UniformBelow(ftl.LogicalPages());
    const std::uint64_t size = rng.Bernoulli(0.5) ? 2048 : 16 * 1024;
    const std::uint64_t offset = lpn * 4096;
    if (offset + size > ftl.LogicalBytes()) continue;
    now = ftl.Write(offset, size, now).completion_us;
  }
  EXPECT_TRUE(ftl.CheckInvariants());
}

TEST(PpbFtlSplit4, WorksEndToEnd) {
  ftl::FlashTarget target(Geo(), nand::NandTiming{});
  PpbConfig cfg;
  cfg.vb_split = 4;
  PpbFtl ftl(target, FtlCfg(), cfg);
  util::Xoshiro256StarStar rng(4);
  Us now = 0;
  for (int i = 0; i < 4000; ++i) {
    const Lpn lpn = rng.UniformBelow(ftl.LogicalPages());
    const std::uint64_t size = rng.Bernoulli(0.5) ? 2048 : 16 * 1024;
    const std::uint64_t offset = lpn * 4096;
    if (offset + size > ftl.LogicalBytes()) continue;
    now = ftl.Write(offset, size, now).completion_us;
  }
  EXPECT_GT(ftl.stats().gc_erases, 0u);
  EXPECT_TRUE(ftl.CheckInvariants());
}

TEST(PpbFtlStriping, LargeColdWriteAlternatesDies) {
  // Hotness-directed placement is preserved (a large write still routes to
  // the cold area) but its consecutive pages now stripe across both dies.
  ftl::FlashTarget target(Geo(), nand::NandTiming{});
  auto ftl_cfg = FtlCfg();
  ftl_cfg.write_frontiers = 2;
  PpbFtl ftl(target, ftl_cfg, PpbConfig{});
  const auto& geo = target.geometry();
  ftl.Write(0, 8 * 4096, 0);  // page-aligned large write -> cold area
  EXPECT_EQ(ftl.ppb_stats().cold_area_writes, 8u);
  std::set<std::uint64_t> dies;
  for (Lpn lpn = 0; lpn < 8; ++lpn) {
    const Ppn ppn = ftl.ProbePpn(lpn);
    ASSERT_NE(ppn, kInvalidPpn);
    dies.insert(geo.DieOfBlock(geo.BlockOf(ppn)));
  }
  EXPECT_EQ(dies.size(), 2u) << "cold-area pages serialized on one die";
  EXPECT_TRUE(ftl.CheckInvariants());
}

TEST(PpbFtlStriping, GcRelocationsTouchMultipleDies) {
  ftl::FlashTarget target(Geo(), nand::NandTiming{});
  auto ftl_cfg = FtlCfg();
  ftl_cfg.write_frontiers = 2;
  PpbFtl ftl(target, ftl_cfg, PpbConfig{});
  util::Xoshiro256StarStar rng(17);
  Us now = 0;
  std::size_t max_gc_list = 0;
  for (int i = 0; i < 4000; ++i) {
    const Lpn lpn = rng.UniformBelow(ftl.LogicalPages());
    const std::uint64_t size = rng.Bernoulli(0.5) ? 2048 : 16 * 1024;
    const std::uint64_t offset = lpn * 4096;
    if (offset + size > ftl.LogicalBytes()) continue;
    now = ftl.Write(offset, size, now).completion_us;
    max_gc_list = std::max(
        max_gc_list,
        std::max(ftl.vbm().SlowListSize(Area::kHot, /*gc_stream=*/true),
                 ftl.vbm().SlowListSize(Area::kCold, /*gc_stream=*/true)));
  }
  ASSERT_GT(ftl.stats().gc_page_copies, 0u);
  EXPECT_GE(ftl.vbm().GcDiesTouched(), 2u);
  // Concurrency, not succession: some GC slow list held two open blocks
  // (two dies) at once.
  EXPECT_GE(max_gc_list, 2u)
      << "PPB GC relocation lists never striped two dies concurrently";
  EXPECT_TRUE(ftl.CheckInvariants());
}

TEST(PpbFtlStriping, HotColdSeparationSurvivesStriping) {
  // Mixed sub-page (hot) and full-page (cold) traffic with striping on:
  // placement classes keep flowing to their areas and all structural
  // invariants hold under GC.
  ftl::FlashTarget target(Geo(), nand::NandTiming{});
  auto ftl_cfg = FtlCfg();
  ftl_cfg.write_frontiers = 2;
  ftl_cfg.stripe_policy = ftl::StripePolicy::kLeastBusy;
  PpbFtl ftl(target, ftl_cfg, PpbConfig{});
  util::Xoshiro256StarStar rng(23);
  Us now = 0;
  for (int i = 0; i < 5000; ++i) {
    const Lpn lpn = rng.UniformBelow(ftl.LogicalPages());
    const std::uint64_t size = rng.Bernoulli(0.4) ? 2048 : 16 * 1024;
    const std::uint64_t offset = lpn * 4096;
    if (offset + size > ftl.LogicalBytes()) continue;
    if (rng.Bernoulli(0.3)) {
      now = ftl.Read(offset, std::min<std::uint64_t>(size, 4096), now)
                .completion_us;
    } else {
      now = ftl.Write(offset, size, now).completion_us;
    }
    if (i % 500 == 0) ASSERT_TRUE(ftl.CheckInvariants()) << "iteration " << i;
  }
  EXPECT_GT(ftl.ppb_stats().hot_area_writes, 0u);
  EXPECT_GT(ftl.ppb_stats().cold_area_writes, 0u);
  EXPECT_GT(ftl.stats().gc_erases, 0u);
  EXPECT_TRUE(ftl.CheckInvariants());
}

}  // namespace
}  // namespace ctflash::core
