// ReplayPlan: the transform pipeline between raw trace sources and the
// replay engine.
//
// A plan owns K trace sources, each with its own per-source options, and is
// itself a pull-iterator of tenant-tagged records:
//
//   source -> filter -> address remap -> time warp -+
//   source -> filter -> address remap -> time warp -+-> K-way merge
//   source -> filter -> address remap -> time warp -+   (by warped ts)
//
// Address remapping fits a trace collected on one device into the simulated
// one without destroying the properties the FTL cares about: every policy
// preserves the offset's residue modulo `alignment_bytes` (a 4 KiB-aligned
// request stays 4 KiB-aligned) and requests are clipped to the target
// footprint.
//
//  * kWrap        — aligned unit index modulo the footprint: preserves
//                   locality and sequential runs, folds a larger address
//                   space onto the device (the seed harness behavior,
//                   now explicit);
//  * kLinearScale — aligned unit index scaled source-span -> footprint:
//                   preserves the *shape* of the address distribution
//                   (hot regions stay distinct instead of aliasing);
//  * kHashScatter — aligned unit index hashed over the footprint:
//                   deliberately destroys locality while preserving sizes
//                   and popularity multiset (a worst-case placement arm).
//
// Time warping rescales inter-arrival gaps: `acceleration` divides
// timestamps (2.0 = twice the offered load), or a `target_iops` derives the
// factor from the source's native rate (resolved from a WorkloadProfile or
// set explicitly via ResolveRateTarget).  Merging K warped streams with
// per-source tenant tags is what turns two MSR traces into a two-tenant
// QoS study; ties in warped timestamps break by source index, so merged
// replays are deterministic.
//
// All transforms are pure per-record functions — a plan pass holds O(K)
// resident records on top of whatever window its sources keep.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "qos/tenant.h"
#include "replay/trace_source.h"
#include "trace/trace.h"
#include "util/types.h"

namespace ctflash::replay {

enum class RemapPolicy : std::uint8_t {
  kNone = 0,        ///< pass offsets through untouched
  kWrap,            ///< fold: aligned unit modulo footprint
  kLinearScale,     ///< stretch: aligned unit scaled source-span -> footprint
  kHashScatter,     ///< scatter: aligned unit hashed over footprint
};

const char* RemapPolicyName(RemapPolicy policy);

struct RemapConfig {
  RemapPolicy policy = RemapPolicy::kNone;
  /// Target address span the remapped trace must land in (required for any
  /// policy but kNone).
  std::uint64_t footprint_bytes = 0;
  /// Target base: remapped offsets fall in [base, base + footprint), so
  /// per-tenant working-set slices stay disjoint.
  std::uint64_t base_bytes = 0;
  /// Remap granularity; offset % alignment is preserved exactly.
  std::uint64_t alignment_bytes = 4096;
  /// Source address span for kLinearScale (0 = resolve from a profile via
  /// ReplayPlan::SetSourceSpan / WorkloadProfile::max_offset_bytes).
  std::uint64_t source_span_bytes = 0;
  /// kHashScatter permutation seed (deterministic for a given seed).
  std::uint64_t hash_seed = 0x9E3779B97F4A7C15ull;

  void Validate() const;
};

/// Applies `config` to one record: remapped offset plus footprint clipping.
/// Returns false when the record clips away entirely (dropped).
bool RemapRecord(const RemapConfig& config, trace::TraceRecord& record);

struct TimeWarpConfig {
  /// Inter-arrival compression: warped_ts = ts / acceleration.  1.0 = real
  /// time, 2.0 = double the offered load.  Must be > 0.
  double acceleration = 1.0;
  /// When > 0, replaces `acceleration` with target_iops / native_iops; the
  /// native rate must be resolved first (ResolveRateTarget), which needs
  /// the source's record count and duration.
  double target_iops = 0.0;
  /// Added to every warped timestamp (aligning traces captured at
  /// different epochs, or delaying one tenant's entry).
  Us start_offset_us = 0;

  void Validate() const;
  /// Derives the effective acceleration from a source's native rate.
  /// No-op when target_iops == 0.
  void ResolveRateTarget(std::uint64_t records, Us duration_us);
  /// warped timestamp of `ts` under this config.
  Us Warp(Us ts) const;
};

struct FilterConfig {
  bool keep_reads = true;
  bool keep_writes = true;
  std::uint64_t min_size_bytes = 0;
  std::uint64_t max_size_bytes = std::numeric_limits<std::uint64_t>::max();
  /// Keep only records whose ORIGINAL offset intersects [lo, hi).
  std::uint64_t offset_lo_bytes = 0;
  std::uint64_t offset_hi_bytes = std::numeric_limits<std::uint64_t>::max();
  /// Stop pulling from the source after this many accepted records
  /// (0 = unlimited).
  std::uint64_t max_records = 0;
  /// Drop records with original timestamps beyond this (0 = unlimited).
  Us max_time_us = 0;

  bool Accepts(const trace::TraceRecord& record) const;
};

/// One record of the merged, tenant-tagged output stream.
struct TaggedRecord {
  trace::TraceRecord record;
  qos::TenantId tenant = qos::kNoTenant;
  std::uint32_t source_index = 0;
};

/// Per-source transform options.
struct SourceOptions {
  std::string name;  ///< reporting label ("" = "source<i>")
  qos::TenantId tenant = qos::kNoTenant;
  FilterConfig filter;
  RemapConfig remap;
  TimeWarpConfig warp;
};

/// Per-source pipeline counters (conservation accounting).
struct SourceCounters {
  std::string name;
  std::uint64_t pulled = 0;    ///< records drawn from the source
  std::uint64_t filtered = 0;  ///< rejected by the filter
  std::uint64_t clipped = 0;   ///< remapped to zero length and dropped
  std::uint64_t emitted = 0;   ///< delivered into the merged stream
};

class ReplayPlan {
 public:
  ReplayPlan() = default;

  ReplayPlan(const ReplayPlan&) = delete;
  ReplayPlan& operator=(const ReplayPlan&) = delete;

  /// Adds a source; returns its source index.  Options are validated here
  /// (std::invalid_argument on bad remap/warp configs; a rate-targeted warp
  /// must be resolved before the first Next()).
  std::uint32_t AddSource(std::unique_ptr<TraceSource> source,
                          const SourceOptions& options);

  std::size_t SourceCount() const { return sources_.size(); }

  /// Pulls the next merged record: smallest warped timestamp wins, ties
  /// break by source index.  Timestamps in the output are the warped ones.
  std::optional<TaggedRecord> Next();

  /// Rewinds every source and the merge state.
  void Reset();

  const SourceCounters& CountersOf(std::uint32_t source_index) const {
    return sources_[source_index].counters;
  }
  const SourceOptions& OptionsOf(std::uint32_t source_index) const {
    return sources_[source_index].options;
  }
  /// Mutable warp access so rate targets can be resolved after profiling.
  TimeWarpConfig& WarpOf(std::uint32_t source_index) {
    return sources_[source_index].options.warp;
  }
  /// Resolves a kLinearScale remap whose source_span_bytes was left 0.
  void SetSourceSpan(std::uint32_t source_index, std::uint64_t span_bytes) {
    sources_[source_index].options.remap.source_span_bytes = span_bytes;
  }

 private:
  struct PlanSource {
    std::unique_ptr<TraceSource> source;
    SourceOptions options;
    SourceCounters counters;
    std::optional<TaggedRecord> head;  ///< next merged candidate
    bool primed = false;
  };

  /// Advances `src` to its next transformed record (fills head).
  void Advance(PlanSource& src, std::uint32_t index);

  std::vector<PlanSource> sources_;
};

}  // namespace ctflash::replay
