// FlashTarget: the NAND array plus its timing fabric.
//
// Combines the behavioural NandDevice (state + constraint checks) with
// channel/chip occupancy timelines so every operation yields a completion
// time.  Operation pipelines:
//   read    : cell sense on the chip, then data-out transfer on the channel;
//   program : data-in transfer on the channel, then cell program on the chip;
//   erase   : chip-only.
// All FTL variants issue their NAND traffic through this class, so baseline
// and PPB see identical timing rules.
//
// Two timing modes are supported:
//  * kServiceTime (default): per-operation latency is the pure service time
//    (cell op + bus transfer) independent of other in-flight requests.  This
//    matches the paper's additive trace-driven accounting, where cumulative
//    latency is the sum of per-request device times.
//  * kQueued: operations additionally queue on the die and channel
//    occupancy timelines, exposing contention (the host interface and
//    queueing studies run in this mode).  The die is the unit of cell-op
//    exclusivity — two dies on one chip interleave freely, which is what
//    lets the host scheduler extract intra-chip parallelism; the chip
//    timelines are kept as pure busy-time accounting in both modes.
//
// Fault injection (ArmFaults) layers seeded media failures on top: page
// programs and block erases can fail verify, reads see read-disturb /
// retention RBER inflation and a bounded read-retry ladder, and whole dies
// or channels can drop out mid-run.  The *Checked operation variants report
// these as typed MediaReadResult / MediaOpResult values the FTL handles;
// NAND protocol violations (FTL bugs) throw MediaError instead of aborting.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "nand/device.h"
#include "nand/error_model.h"
#include "nand/fault_plan.h"
#include "sim/resource.h"
#include "util/random.h"
#include "util/types.h"

namespace ctflash::obs {
class MediaHook;
}

namespace ctflash::ftl {

enum class TimingMode { kServiceTime = 0, kQueued = 1 };

/// Thrown on NAND protocol violations and unrecoverable media conditions
/// (e.g. the spare pool retired away) so fault campaigns classify the arm
/// instead of aborting the process.
class MediaError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Who issued a read, for error attribution (host I/O vs GC relocation).
enum class ReadKind : std::uint8_t { kHost = 0, kGc = 1 };

/// Aggregate reliability counters (populated when an error model is armed).
/// Kept separately for host and GC reads; retry/recovery fields advance
/// only when fault handling is armed.
struct ReadErrorStats {
  std::uint64_t sampled_reads = 0;
  std::uint64_t total_bit_errors = 0;
  std::uint64_t uncorrectable_reads = 0;  ///< first-sense ECC failures
  std::uint64_t retried_reads = 0;        ///< reads that entered the ladder
  std::uint64_t retry_rungs = 0;          ///< total extra senses booked
  std::uint64_t recovered_reads = 0;      ///< ladder found a clean sense
  std::uint64_t unrecovered_reads = 0;    ///< ladder exhausted: data lost
  std::uint64_t lost_reads = 0;           ///< die/channel gone: data lost

  double MeanBitErrorsPerRead() const {
    return sampled_reads == 0
               ? 0.0
               : static_cast<double>(total_bit_errors) /
                     static_cast<double>(sampled_reads);
  }
};

/// Outcome of a checked page read.
struct MediaReadResult {
  Us done = 0;
  bool uncorrectable = false;  ///< ECC failed after the whole retry ladder
  bool die_lost = false;       ///< the die/channel no longer responds
  std::uint32_t retries = 0;   ///< extra senses spent in the ladder

  /// The stored data is gone (only ever true with fault handling armed).
  bool DataLost() const { return uncorrectable || die_lost; }
};

/// Outcome of a checked program / erase.
struct MediaOpResult {
  Us done = 0;
  bool failed = false;    ///< verify failed (or the die is lost)
  bool die_lost = false;
};

/// Knobs for how armed devices *handle* injected faults.
struct FaultHandlingConfig {
  /// Read-retry ladder depth: extra senses (each a full cell-read latency)
  /// tried after a first-sense ECC failure before declaring data loss.
  std::uint32_t max_read_retries = 4;
  /// Per-rung RBER multiplier (< 1): each retry shifts read thresholds and
  /// re-feeds the LayerErrorModel::Correctable budget at the reduced rate.
  double retry_rber_scale = 0.5;
  /// Re-allocation attempts for a failed page program before the write is
  /// abandoned as unrecoverable; 0 = auto (pages_per_block + 16, enough to
  /// burn past a dead-die frontier block).
  std::uint32_t max_program_retries = 0;

  void Validate() const;
};

class FlashTarget {
 public:
  FlashTarget(const nand::NandGeometry& geometry, const nand::NandTiming& timing,
              std::uint32_t endurance_pe_cycles = 1'000'000,
              TimingMode mode = TimingMode::kServiceTime);

  /// Reads a programmed page; returns the completion time of the data-out
  /// transfer.  `transfer_bytes` is how much of the page crosses the bus
  /// (sub-page host reads move only the requested bytes); 0 means the whole
  /// page.  Bit errors are sampled over the codewords the transfer actually
  /// decodes.  Throws MediaError on NAND protocol violations (FTL bugs).
  Us ReadPage(Ppn ppn, Us earliest, std::uint64_t transfer_bytes = 0);

  /// ReadPage plus fault semantics: runs the read-retry ladder on ECC
  /// failure (each rung books one extra cell sense) and reports data loss
  /// instead of only counting it.  `kind` attributes the sample to the host
  /// or GC error stats.
  MediaReadResult ReadPageChecked(Ppn ppn, Us earliest,
                                  std::uint64_t transfer_bytes = 0,
                                  ReadKind kind = ReadKind::kHost);

  /// Programs the next page of a block (ppn must respect sequential order);
  /// returns cell-program completion time.
  Us ProgramPage(Ppn ppn, Us earliest);

  /// ProgramPage plus fault semantics: reports injected verify failures and
  /// die loss.  The page is consumed either way (a failed program still
  /// burns the page), so block fill bookkeeping stays consistent.
  MediaOpResult ProgramPageChecked(Ppn ppn, Us earliest);

  /// Erases a block; returns completion time.
  Us EraseBlock(BlockId block, Us earliest);

  /// EraseBlock plus fault semantics: reports injected verify failures and
  /// die loss (the FTL retires the block as grown-bad).
  MediaOpResult EraseBlockChecked(BlockId block, Us earliest);

  /// Internal GC copy (read then program, no host transfer across the bus is
  /// saved because planes lack copy-back here): returns program completion.
  /// The read is attributed to the GC error stats.
  Us CopyPage(Ppn from, Ppn to, Us earliest);

  nand::NandDevice& nand() { return nand_; }
  const nand::NandDevice& nand() const { return nand_; }
  const nand::NandGeometry& geometry() const { return nand_.geometry(); }
  const nand::LatencyModel& latency_model() const {
    return nand_.latency_model();
  }

  const sim::ResourcePool& chips() const { return chips_; }
  const sim::ResourcePool& channels() const { return channels_; }
  const sim::ResourcePool& dies() const { return dies_; }
  /// First time the die serving `block` can start a new cell operation.
  /// The host scheduler uses this for conflict-aware dispatch ordering.
  Us DieFreeAt(BlockId block) const;
  TimingMode mode() const { return mode_; }

  /// Arms the synthetic layer error model: every subsequent page read
  /// samples bit errors at the page's layer/wear and checks the ECC budget.
  /// Without fault handling armed, uncorrectable reads are counted, not
  /// failed — the FTL study is about performance; reliability consumers
  /// inspect read_error_stats().  Must be called before any state restore:
  /// arming reseeds the error RNG and zeroes the stats, so arming *after*
  /// LoadState would silently discard restored state (throws
  /// std::logic_error instead).
  void ArmErrorModel(const nand::ErrorModelConfig& config,
                     std::uint64_t seed = 0x5EED);

  /// Arms seeded fault injection plus the handling policy.  Unlike
  /// ArmErrorModel this is safe (and typical) *after* a restore: fault
  /// campaigns restore one aged snapshot, then arm a per-arm fault plan.
  void ArmFaults(const nand::FaultPlanConfig& plan,
                 const FaultHandlingConfig& handling, std::uint64_t seed);

  bool ErrorModelArmed() const { return error_model_ != nullptr; }
  bool FaultsArmed() const { return faults_ != nullptr; }
  const nand::FaultInjector* fault_injector() const { return faults_.get(); }
  const FaultHandlingConfig& fault_handling() const { return handling_; }
  /// Total attempts (first + re-allocations) the FTL should spend on a page
  /// program before declaring the write unrecoverable; 1 when unarmed.
  std::uint32_t MaxProgramAttempts() const;

  /// Wires a media observer (borrowed; e.g. obs::Tracer) that sees read
  /// retry-ladder activity and dead-die accesses as they are booked on the
  /// timelines.  Null (the default) disables the hook.
  void AttachMediaHook(obs::MediaHook* hook) { media_hook_ = hook; }

  /// Host-attributed read error counters.
  const ReadErrorStats& read_error_stats() const { return error_stats_; }
  /// GC-relocation-attributed read error counters.
  const ReadErrorStats& gc_read_error_stats() const { return gc_error_stats_; }

  /// Serializes the NAND array, occupancy timelines, error RNG stream,
  /// host/GC error counters, and (when armed) the fault injector + handling
  /// policy.  Construction-derived values (transfer time, mode, error-model
  /// config) are not serialized; LoadState assumes a target built from the
  /// same configuration and re-arms fault state to match the snapshot.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  ReadErrorStats& StatsFor(ReadKind kind) {
    return kind == ReadKind::kGc ? gc_error_stats_ : error_stats_;
  }
  static void SaveReadStats(util::StateWriter& w, const ReadErrorStats& s);
  static void LoadReadStats(util::StateReader& r, ReadErrorStats& s);

  nand::NandDevice nand_;
  sim::ResourcePool chips_;
  sim::ResourcePool channels_;
  sim::ResourcePool dies_;
  Us page_transfer_us_;
  TimingMode mode_;
  std::unique_ptr<nand::LayerErrorModel> error_model_;
  util::Xoshiro256StarStar error_rng_;
  ReadErrorStats error_stats_;     // host-attributed
  ReadErrorStats gc_error_stats_;  // GC-attributed
  std::unique_ptr<nand::FaultInjector> faults_;
  FaultHandlingConfig handling_;
  bool state_restored_ = false;
  obs::MediaHook* media_hook_ = nullptr;  ///< borrowed; null = disabled
};

}  // namespace ctflash::ftl
