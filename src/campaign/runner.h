// Campaign runner: executes an expanded CampaignSpec across a worker pool.
//
// Two-phase execution:
//
//   1. Prefill phase (share_prefill, the default): arms are grouped by
//      device shape (campaign/snapshot.h shape key) + prefill parameters;
//      each group prefills ONE device and snapshots it.  A 16-arm grid over
//      {ftl, gc_routing, queue_depth} with one device shape runs two
//      prefills (one per FTL kind) instead of sixteen.
//   2. Arm phase: every arm constructs a fresh device, restores its group's
//      snapshot (or prefills straight through when sharing is off), then
//      runs its workload through the host interface.
//
// Both phases shard over `workers` threads.  Arms never share mutable
// state — each owns its Ssd/HostInterface/EventQueue — so results are
// bit-for-bit identical for any worker count; CampaignResult splits the
// report into a deterministic part (byte-comparable across worker counts,
// which bench_campaign asserts) and a timing part (wall clock, prefill
// savings).
//
// An arm that throws is reported as a failed arm in the results rather than
// aborting the campaign; a prefill failure aborts (every arm of the group
// would fail identically).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "campaign/snapshot.h"
#include "campaign/spec.h"

namespace ctflash::campaign {

struct ArmResult {
  std::string name;
  std::uint64_t index = 0;
  bool ok = false;
  std::string error;  ///< exception text when !ok
  /// Fault-arm classification; empty for fault-free arms.
  ///   "masked"    — faults armed but nothing visible happened,
  ///   "recovered" — recovery machinery ran (retries, retirement, program
  ///                 re-allocation) and no data was lost,
  ///   "data-loss" — pages lost or the arm died on an unrecoverable error.
  std::string outcome;
  Json config;        ///< ArmSpec::ConfigSummary()
  Json metrics;       ///< workload + device counters; deterministic
};

struct CampaignResult {
  std::string campaign;
  std::uint32_t workers = 1;
  bool share_prefill = true;
  std::vector<ArmResult> arms;  ///< in spec expansion order

  // Wall-clock accounting (excluded from the deterministic report).
  double total_wall_ms = 0.0;
  double prefill_wall_ms = 0.0;
  double arms_wall_ms = 0.0;
  std::uint64_t prefill_groups = 0;   ///< distinct prefills actually run
  std::uint64_t prefill_restores = 0; ///< arms served from a snapshot

  /// Everything except wall-clock timing: campaign name, per-arm config
  /// echo + metrics.  Dump() of this value is byte-identical across worker
  /// counts and between shared-prefill and straight-through execution.
  Json DeterministicJson() const;

  /// DeterministicJson() plus a "timing" block (wall clock, prefill reuse).
  Json Report() const;

  /// One row per arm: name, ok, requests, iops, latency percentiles, WAF.
  std::string Csv() const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignSpec spec);

  /// Runs every arm; `workers_override` > 0 replaces the spec's worker
  /// count (bench/CI knob).
  CampaignResult Run(std::uint32_t workers_override = 0);

  const CampaignSpec& spec() const { return spec_; }

 private:
  CampaignSpec spec_;
};

/// Runs one arm in isolation (used by the runner's workers and by
/// bench_campaign's straight-through reference runs).  `shared` non-null
/// restores that snapshot instead of prefilling.
ArmResult RunCampaignArm(const ArmSpec& arm, const DeviceState* shared);

/// RFC 4180 CSV field encoding: fields containing a comma, double quote,
/// CR or LF are wrapped in double quotes with embedded quotes doubled;
/// anything else passes through unquoted.  Shared by the campaign and
/// cluster report exporters (arm names and config summaries embed commas
/// and, in hostile specs, quotes/newlines).
std::string CsvField(const std::string& value);

}  // namespace ctflash::campaign
