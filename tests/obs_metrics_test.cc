// MetricsRegistry unit tests: merge semantics per metric kind (counters
// sum, gauges max, histograms merge), deterministic sorted serialization,
// and the stats-export bridge that flattens a PhaseStats aggregate into
// hierarchical registry names.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/phase.h"

namespace ctflash::obs {
namespace {

TEST(MetricsRegistry, CountersAccumulateAndMergeBySum) {
  MetricsRegistry a;
  a.AddCounter("ftl.gc.erases", 3);
  a.AddCounter("ftl.gc.erases", 4);
  EXPECT_EQ(a.CounterValue("ftl.gc.erases"), 7u);
  EXPECT_EQ(a.CounterValue("never.touched"), 0u);

  MetricsRegistry b;
  b.AddCounter("ftl.gc.erases", 10);
  b.AddCounter("host.completed", 2);
  a.Merge(b);
  EXPECT_EQ(a.CounterValue("ftl.gc.erases"), 17u);
  EXPECT_EQ(a.CounterValue("host.completed"), 2u);
}

TEST(MetricsRegistry, GaugesKeepLastWriteAndMergeByMax) {
  MetricsRegistry a;
  a.SetGauge("ftl.waf", 1.5);
  a.SetGauge("ftl.waf", 1.2);  // last write wins within one registry
  EXPECT_DOUBLE_EQ(a.GaugeValue("ftl.waf"), 1.2);

  MetricsRegistry b;
  b.SetGauge("ftl.waf", 1.9);  // fleet peak: merge keeps the max
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.GaugeValue("ftl.waf"), 1.9);
}

TEST(MetricsRegistry, HistogramsMergeSamples) {
  MetricsRegistry a;
  a.Histogram("host.read.latency").Add(100);
  a.Histogram("host.read.latency").Add(300);

  MetricsRegistry b;
  b.Histogram("host.read.latency").Add(200);
  a.Merge(b);
  EXPECT_EQ(a.Histogram("host.read.latency").count(), 3u);
  EXPECT_DOUBLE_EQ(a.Histogram("host.read.latency").total_us(), 600.0);
}

TEST(MetricsRegistry, ToJsonIsSortedAndDeterministic) {
  const auto build = [] {
    MetricsRegistry r;
    // Insertion order deliberately unsorted; std::map serializes sorted.
    r.AddCounter("z.last", 1);
    r.AddCounter("a.first", 2);
    r.SetGauge("m.middle", 0.5);
    r.Histogram("h.lat").Add(42);
    return r.ToJson().Dump(2);
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  // Sorted counters: "a.first" serializes before "z.last".
  EXPECT_LT(a.find("a.first"), a.find("z.last"));
  const campaign::Json parsed = campaign::Json::Parse(a);
  EXPECT_EQ(parsed.Get("counters")->Get("a.first")->AsUint(), 2u);
  EXPECT_EQ(parsed.Get("histograms")->Get("h.lat")->GetUintOr("count", 0), 1u);
}

TEST(MetricsRegistry, ResetClearsEverything) {
  MetricsRegistry r;
  r.AddCounter("c", 1);
  r.SetGauge("g", 1.0);
  r.Histogram("h").Add(1);
  EXPECT_EQ(r.Size(), 3u);
  r.Reset();
  EXPECT_EQ(r.Size(), 0u);
}

TEST(MetricsRegistry, ExportPhaseStatsFlattensToHierarchicalNames) {
  PhaseStats stats;
  stats.read.Add(/*paced_us=*/10, /*queued_us=*/20, /*media_us=*/70);
  stats.read.Attribute(StallCause::kDieBusyGc, 15);
  stats.write.Add(5, 0, 45);
  stats.write.Attribute(StallCause::kWriteHold, 8);

  MetricsRegistry r;
  ExportPhaseStats(stats, "obs", r);
  EXPECT_EQ(r.Histogram("obs.read.total").count(), 1u);
  EXPECT_DOUBLE_EQ(r.Histogram("obs.read.media").total_us(), 70.0);
  EXPECT_DOUBLE_EQ(r.Histogram("obs.write.paced").total_us(), 5.0);
  EXPECT_EQ(r.CounterValue("obs.read.stall.die-busy-gc.us"), 15u);
  EXPECT_EQ(r.CounterValue("obs.read.stall.die-busy-gc.events"), 1u);
  EXPECT_EQ(r.CounterValue("obs.write.stall.write-hold.us"), 8u);
  // Untouched causes exist as zeroed counters (enumerable time series).
  EXPECT_EQ(r.CounterValue("obs.read.stall.dead-device.us"), 0u);
}

}  // namespace
}  // namespace ctflash::obs
