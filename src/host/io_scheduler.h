// Page-level flash transaction scheduler: the dispatch stage between the
// host submission queues and the device — and, with scheduled GC routing,
// the single arbiter of ALL device work, host and background alike.
//
// Admitted host requests arrive already split into single-page
// sched::FlashTransactions.  The scheduler keeps a ready set and at most
// `device_slots` transactions in flight (the device's internal command
// queue); each completion event frees a slot and pulls the next winner, so
// dispatch is driven entirely by the simulation event queue and is
// deterministic.
//
// Dispatch order is the scheduler's whole point:
//  * kFifo issues strictly in intake order — a read stuck behind a busy
//    die blocks everything after it (head-of-line blocking);
//  * kOutOfOrder ranks by priority class first (host-read > host-write >
//    gc-copy > gc-erase), then picks the ready transaction whose target
//    die frees earliest (die-level conflict detection via the FlashTarget
//    occupancy timelines), tie-breaking on plane then intake order so
//    same-die work stripes across planes deterministically.
//
// GC as preemptible work (FtlConfig::gc_routing = kScheduled): the
// scheduler pulls relocation copies and victim erases from the FTL's
// planner (FtlBase::DrainGcTransactions) into the same ready set.  Because
// GC ranks below host traffic, a ready host read overtakes queued GC
// copies on its die — the read books the earlier timeline slot, which is
// exactly the QoS the inline routing cannot express.  Three guards keep GC
// live:
//  * aging — every host dispatch that overtakes waiting GC bumps the GC
//    transactions' age; at `gc_aging_limit` overtakes a GC transaction is
//    boosted above host writes (never above host reads);
//  * urgency — while the free pool sits at/below gc_threshold_low, all GC
//    work is boosted the same way;
//  * admission — while GC transactions are ready and the pool is at/below
//    the write floor (gc_threshold_low + FtlBase::GcScheduleLead(), sized
//    per variant to cover one victim's claims), host writes are held in
//    the ready set, so sustained writes can never starve the pool below
//    the GC trigger.
// A gc-erase never dispatches before all of its job's copies did (the
// victim must be fully relocated), enforced with a per-victim counter.
//
// Host writes get the same protection against host reads (they strictly
// outrank writes in out-of-order mode): with `write_aging_limit` > 0, a
// ready host write overtaken by that many host-read dispatches is boosted
// into the read rank, so an open-loop read flood can no longer starve
// writes indefinitely.  The limit defaults to 0 (disabled) to preserve the
// seed dispatch order bit-for-bit.
//
// Multi-tenant arbitration (qos::TenantTable attached): within a host
// priority rank whose candidates span tenants, a weighted deficit-round-
// robin pick (plus the min-share reservation floor) chooses the tenant
// first, and only then does the die-availability key order apply among that
// tenant's transactions.  Priority classes stay global — a host read of any
// tenant still outranks every host write — but inside a class tenants drain
// in weight proportion.  GC work carries no tenant and skips arbitration.
//
// Writes have no resolvable die before the FTL's allocator runs at
// dispatch time and use the write-frontier availability probe; unmapped
// reads carry no flash work at all and take a NEUTRAL key (startable now,
// worst plane) so they never leapfrog real work that is also startable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "qos/tenant_table.h"
#include "sched/observer.h"
#include "sched/transaction.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace ctflash::host {

/// Dispatch-order policy; see file header.
enum class SchedPolicy { kFifo = 0, kOutOfOrder = 1 };

const char* SchedPolicyName(SchedPolicy policy);

/// The device-internal transaction type (promoted to ctflash::sched so the
/// FTL can emit GC work through the same path), under its historical name.
using FlashTransaction = sched::FlashTransaction;

class IoScheduler {
 public:
  using TxnCallback =
      std::function<void(const FlashTransaction&, const ftl::RequestResult&)>;
  using DispatchCallback = std::function<void(const FlashTransaction&)>;

  /// Attaches itself as the FTL's GC sink when the FTL is configured with
  /// GcRouting::kScheduled (from then on the FTL stops running GC inline);
  /// the destructor detaches, handing GC back to the inline path so a
  /// live Ssd is never left with no one collecting.
  /// `gc_aging_limit` has no default here on purpose: HostConfig carries
  /// the documented default, and a second one would silently drift.
  /// `write_aging_limit` 0 disables write aging (the seed behavior);
  /// `tenants` (borrowed, may be null) enables multi-tenant arbitration.
  IoScheduler(ssd::Ssd& ssd, sim::EventQueue& queue, SchedPolicy policy,
              std::uint32_t device_slots, std::uint32_t gc_aging_limit,
              std::uint32_t write_aging_limit = 0,
              qos::TenantTable* tenants = nullptr);
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  /// Sink for completed HOST transactions (set once by the host
  /// interface).  GC transactions complete internally and are observable
  /// through the counters below.
  void OnTxnComplete(TxnCallback cb) { on_complete_ = std::move(cb); }

  /// Diagnostic/test hook: invoked for every transaction in dispatch order.
  /// Implemented as a thin adapter over AttachObserver — both pathways see
  /// the identical dispatch stream; setting a new callback replaces the
  /// previous one (the historical contract).
  void OnDispatch(DispatchCallback cb);

  /// Registers a scheduler observer (borrowed; e.g. obs::Tracer).  Observers
  /// see every dispatch with its resolved DispatchContext and every
  /// execution completion, in deterministic event order.  With no observers
  /// attached the scheduler computes no context at all.
  void AttachObserver(sched::SchedulerObserver* observer);
  void DetachObserver(sched::SchedulerObserver* observer);

  /// Adds a host transaction to the ready set and dispatches while slots
  /// allow.  The scheduler stamps the global intake sequence.
  void Enqueue(FlashTransaction txn);

  std::uint32_t InFlight() const { return in_flight_; }
  std::size_t ReadyCount() const { return ready_.size(); }
  std::uint64_t DispatchedCount() const { return dispatched_; }
  /// Highest number of simultaneously in-flight transactions observed.
  std::uint32_t PeakInFlight() const { return peak_in_flight_; }
  SchedPolicy policy() const { return policy_; }
  std::uint32_t gc_aging_limit() const { return gc_aging_limit_; }
  std::uint32_t write_aging_limit() const { return write_aging_limit_; }
  /// Host writes that dispatched with their aging boost active (telemetry
  /// for the read-flood starvation bound).
  std::uint64_t AgedWriteDispatches() const { return aged_write_dispatches_; }

  // --- GC routing observability --------------------------------------------
  /// GC transactions currently waiting in the ready set.
  std::size_t GcReadyCount() const { return gc_ready_; }
  std::uint64_t GcDispatchedCount() const { return gc_dispatched_; }
  std::uint64_t GcCompletedCount() const { return gc_completed_; }
  /// Host-read dispatches that overtook at least one ready GC transaction
  /// (the preemption events the scheduled routing exists for).
  std::uint64_t ReadPreemptionsOfGc() const { return read_preemptions_; }
  /// Picks at which host writes were held by the admission guard.
  std::uint64_t WriteHoldPicks() const { return write_hold_picks_; }

 private:
  /// A ready transaction plus its aging state: overtakes seen by waiting
  /// GC work (any host dispatch) or by waiting host writes (host-read
  /// dispatches, when write aging is enabled).
  struct ReadyTxn {
    FlashTransaction txn;
    std::uint32_t age = 0;
    /// Intake time (observer latency attribution; unused by scheduling).
    Us enqueue_us = 0;
    /// The write-admission guard held this write at least once.
    bool held = false;
  };

  /// Out-of-order sort key within a priority rank: earliest cell-op start
  /// on the target die plus the plane stripe tie-break.
  struct DispatchKey {
    Us start = 0;
    std::uint32_t plane = 0;
  };

  static constexpr std::size_t kNoPick = ~static_cast<std::size_t>(0);
  /// Neutral plane for transactions with no die work (unmapped reads):
  /// loses every tie against real flash work, wins only over later starts.
  static constexpr std::uint32_t kNeutralPlane = ~0u;

  void Pump();
  /// Drains the FTL's scheduled-GC planner into the ready set.
  void PullGcWork();
  bool Eligible(const ReadyTxn& rt, bool write_pressure) const;
  int RankOf(const ReadyTxn& rt, bool urgent) const;
  /// Index of the next transaction to dispatch, or kNoPick when nothing is
  /// eligible (held writes / gated erases wait for state to change).
  std::size_t PickNext(bool urgent, bool write_pressure) const;
  DispatchKey KeyOf(const FlashTransaction& txn, Us write_free_at) const;
  /// Resolves the observer-facing dispatch context (target die and its
  /// availability); only computed when observers are attached.
  sched::DispatchContext ContextOf(const ReadyTxn& rt) const;
  void Dispatch(std::size_t idx);

  ssd::Ssd& ssd_;
  sim::EventQueue& queue_;
  SchedPolicy policy_;
  std::uint32_t device_slots_;
  std::uint32_t gc_aging_limit_;
  std::uint32_t write_aging_limit_;
  /// Borrowed from the host interface; non-null only in multi-tenant mode.
  /// PickNext (const) arbitrates through it — tenant DRR state advances
  /// exactly once per dispatched transaction.
  qos::TenantTable* tenants_;
  bool attached_gc_ = false;  ///< this scheduler is the FTL's GC sink
  std::uint32_t in_flight_ = 0;
  std::uint32_t peak_in_flight_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<ReadyTxn> ready_;
  /// Copies of a GC job not yet dispatched, keyed by victim block; the
  /// job's erase is eligible only once its entry drains to zero.
  std::unordered_map<BlockId, std::uint32_t> gc_copies_undispatched_;
  std::vector<sched::FlashTransaction> gc_intake_;  ///< drain scratch buffer
  /// Per-tenant "has eligible work in the winning rank" scratch for
  /// PickNext (mutable: PickNext is logically const; this is a buffer).
  mutable std::vector<bool> arb_active_;
  std::size_t gc_ready_ = 0;
  std::uint64_t gc_dispatched_ = 0;
  std::uint64_t gc_completed_ = 0;
  std::uint64_t read_preemptions_ = 0;
  std::uint64_t write_hold_picks_ = 0;
  std::uint64_t aged_write_dispatches_ = 0;
  TxnCallback on_complete_;
  /// Dispatch/execution observers (obs::Tracer and the OnDispatch adapter).
  std::vector<sched::SchedulerObserver*> observers_;
  /// Owns the adapter wrapping the legacy OnDispatch callback.
  std::unique_ptr<sched::SchedulerObserver> dispatch_adapter_;
};

}  // namespace ctflash::host
