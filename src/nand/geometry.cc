#include "nand/geometry.h"

#include <sstream>
#include <stdexcept>

namespace ctflash::nand {

void NandGeometry::Validate() const {
  if (channels == 0 || chips_per_channel == 0 || dies_per_chip == 0 ||
      planes_per_die == 0 || blocks_per_plane == 0 || pages_per_block == 0 ||
      page_size_bytes == 0 || num_layers == 0) {
    throw std::invalid_argument("NandGeometry: all dimensions must be > 0");
  }
  if (num_layers > pages_per_block) {
    throw std::invalid_argument(
        "NandGeometry: num_layers must not exceed pages_per_block "
        "(every layer must hold at least one page)");
  }
  if (pages_per_block % num_layers != 0) {
    throw std::invalid_argument(
        "NandGeometry: pages_per_block must be a multiple of num_layers");
  }
}

std::uint32_t NandGeometry::LayerOfPage(std::uint32_t page_in_block) const {
  if (page_in_block >= pages_per_block) {
    throw std::out_of_range("LayerOfPage: page index out of range");
  }
  return page_in_block / (pages_per_block / num_layers);
}

PhysicalAddress NandGeometry::AddressOfBlock(BlockId block) const {
  if (block >= TotalBlocks()) {
    throw std::out_of_range("AddressOfBlock: block out of range");
  }
  PhysicalAddress a;
  const std::uint64_t plane_flat = block % TotalPlanes();
  a.block = block / TotalPlanes();
  a.plane = static_cast<std::uint32_t>(plane_flat % planes_per_die);
  const std::uint64_t die_flat = plane_flat / planes_per_die;
  a.die = static_cast<std::uint32_t>(die_flat % dies_per_chip);
  const std::uint64_t chip_flat = die_flat / dies_per_chip;
  a.chip = static_cast<std::uint32_t>(chip_flat % chips_per_channel);
  a.channel = static_cast<std::uint32_t>(chip_flat / chips_per_channel);
  return a;
}

PhysicalAddress NandGeometry::AddressOfPpn(Ppn ppn) const {
  if (ppn >= TotalPages()) {
    throw std::out_of_range("AddressOfPpn: ppn out of range");
  }
  PhysicalAddress a = AddressOfBlock(BlockOf(ppn));
  a.page = PageOf(ppn);
  return a;
}

std::uint64_t NandGeometry::ChipOfBlock(BlockId block) const {
  if (block >= TotalBlocks()) {
    throw std::out_of_range("ChipOfBlock: block out of range");
  }
  const std::uint64_t plane_flat = block % TotalPlanes();
  return plane_flat / (planes_per_die * dies_per_chip);
}

std::uint32_t NandGeometry::ChannelOfBlock(BlockId block) const {
  return static_cast<std::uint32_t>(ChipOfBlock(block) / chips_per_channel);
}

std::uint64_t NandGeometry::DieOfBlock(BlockId block) const {
  if (block >= TotalBlocks()) {
    throw std::out_of_range("DieOfBlock: block out of range");
  }
  return (block % TotalPlanes()) / planes_per_die;
}

std::uint32_t NandGeometry::PlaneOfBlock(BlockId block) const {
  if (block >= TotalBlocks()) {
    throw std::out_of_range("PlaneOfBlock: block out of range");
  }
  return static_cast<std::uint32_t>((block % TotalPlanes()) % planes_per_die);
}

std::string NandGeometry::ToString() const {
  std::ostringstream os;
  os << channels << "ch x " << chips_per_channel << "chip x " << dies_per_chip
     << "die x " << planes_per_die << "plane x " << blocks_per_plane
     << "blk x " << pages_per_block << "pg x " << page_size_bytes << "B ("
     << num_layers << " layers, "
     << static_cast<double>(TotalBytes()) / static_cast<double>(kGiB)
     << " GiB)";
  return os.str();
}

NandGeometry ScaledGeometry(const NandGeometry& base,
                            std::uint64_t target_bytes) {
  base.Validate();
  if (target_bytes == 0) {
    throw std::invalid_argument("ScaledGeometry: target_bytes must be > 0");
  }
  NandGeometry g = base;
  const std::uint64_t bytes_per_plane_block =
      static_cast<std::uint64_t>(g.pages_per_block) * g.page_size_bytes *
      g.TotalPlanes();
  std::uint64_t blocks = target_bytes / bytes_per_plane_block;
  if (blocks * bytes_per_plane_block < target_bytes) ++blocks;
  if (blocks == 0) blocks = 1;
  g.blocks_per_plane = blocks;
  return g;
}

}  // namespace ctflash::nand
