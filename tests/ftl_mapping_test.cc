#include "ftl/mapping_table.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/random.h"

namespace ctflash::ftl {
namespace {

TEST(MappingTable, ConstructionValidation) {
  EXPECT_THROW(MappingTable(0, 10), std::invalid_argument);
  EXPECT_THROW(MappingTable(10, 0), std::invalid_argument);
  EXPECT_THROW(MappingTable(11, 10), std::invalid_argument);
  const MappingTable t(8, 16);
  EXPECT_EQ(t.logical_pages(), 8u);
  EXPECT_EQ(t.physical_pages(), 16u);
}

TEST(MappingTable, StartsUnmapped) {
  const MappingTable t(4, 8);
  for (Lpn l = 0; l < 4; ++l) {
    EXPECT_EQ(t.Lookup(l), kInvalidPpn);
    EXPECT_FALSE(t.IsMapped(l));
  }
  for (Ppn p = 0; p < 8; ++p) EXPECT_EQ(t.LpnOf(p), kInvalidLpn);
  EXPECT_EQ(t.mapped_count(), 0u);
  EXPECT_TRUE(t.CheckConsistent());
}

TEST(MappingTable, UpdateCreatesBidirectionalLink) {
  MappingTable t(4, 8);
  EXPECT_EQ(t.Update(2, 5), kInvalidPpn);
  EXPECT_EQ(t.Lookup(2), 5u);
  EXPECT_EQ(t.LpnOf(5), 2u);
  EXPECT_EQ(t.mapped_count(), 1u);
  EXPECT_TRUE(t.CheckConsistent());
}

TEST(MappingTable, UpdateReturnsAndReleasesOldPpn) {
  MappingTable t(4, 8);
  t.Update(2, 5);
  EXPECT_EQ(t.Update(2, 6), 5u);
  EXPECT_EQ(t.LpnOf(5), kInvalidLpn);  // old reverse entry cleared
  EXPECT_EQ(t.Lookup(2), 6u);
  EXPECT_EQ(t.mapped_count(), 1u);
  EXPECT_TRUE(t.CheckConsistent());
}

TEST(MappingTable, DoubleOwnershipRejected) {
  MappingTable t(4, 8);
  t.Update(0, 3);
  EXPECT_THROW(t.Update(1, 3), std::logic_error);
}

TEST(MappingTable, UnmapReleasesBothDirections) {
  MappingTable t(4, 8);
  t.Update(1, 2);
  EXPECT_EQ(t.Unmap(1), 2u);
  EXPECT_EQ(t.Lookup(1), kInvalidPpn);
  EXPECT_EQ(t.LpnOf(2), kInvalidLpn);
  EXPECT_EQ(t.mapped_count(), 0u);
  EXPECT_EQ(t.Unmap(1), kInvalidPpn);  // idempotent
  EXPECT_TRUE(t.CheckConsistent());
}

TEST(MappingTable, ReleasePpnClearsReverseOnly) {
  MappingTable t(4, 8);
  t.Update(1, 2);
  t.ReleasePpn(2);
  EXPECT_EQ(t.LpnOf(2), kInvalidLpn);
  // Forward still points; caller is mid-GC-move and must Update next.
  EXPECT_EQ(t.Lookup(1), 2u);
  t.Update(1, 7);
  EXPECT_TRUE(t.CheckConsistent());
}

TEST(MappingTable, RangeErrors) {
  MappingTable t(4, 8);
  EXPECT_THROW(t.Lookup(4), std::out_of_range);
  EXPECT_THROW(t.LpnOf(8), std::out_of_range);
  EXPECT_THROW(t.Update(4, 0), std::out_of_range);
  EXPECT_THROW(t.Update(0, 8), std::out_of_range);
  EXPECT_THROW(t.Unmap(4), std::out_of_range);
  EXPECT_THROW(t.ReleasePpn(8), std::out_of_range);
}

TEST(MappingTable, RandomOpStreamStaysConsistent) {
  // Property: any interleaving of Update/Unmap keeps the forward/reverse
  // maps mutually consistent.
  MappingTable t(64, 128);
  util::Xoshiro256StarStar rng(2024);
  std::vector<bool> ppn_used(128, false);
  for (int i = 0; i < 5000; ++i) {
    const Lpn lpn = rng.UniformBelow(64);
    if (rng.Bernoulli(0.2)) {
      const Ppn old = t.Unmap(lpn);
      if (old != kInvalidPpn) ppn_used[old] = false;
    } else {
      // Find a free ppn.
      Ppn ppn = rng.UniformBelow(128);
      bool found = false;
      for (int k = 0; k < 128; ++k) {
        const Ppn cand = (ppn + k) % 128;
        if (!ppn_used[cand]) {
          ppn = cand;
          found = true;
          break;
        }
      }
      if (!found) continue;
      const Ppn old = t.Update(lpn, ppn);
      ppn_used[ppn] = true;
      if (old != kInvalidPpn) ppn_used[old] = false;
    }
    if (i % 500 == 0) {
      ASSERT_TRUE(t.CheckConsistent()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(t.CheckConsistent());
}

}  // namespace
}  // namespace ctflash::ftl
