#include "sched/transaction.h"

namespace ctflash::sched {

const char* TxnSourceName(TxnSource source) {
  switch (source) {
    case TxnSource::kHostRead:
      return "host-read";
    case TxnSource::kHostWrite:
      return "host-write";
    case TxnSource::kGcCopy:
      return "gc-copy";
    case TxnSource::kGcErase:
      return "gc-erase";
  }
  return "?";
}

}  // namespace ctflash::sched
