// bench_check: diff BENCH_*.json bench reports against checked-in
// baselines with tolerance bands, as a CI gate.
//
// The benches self-assert their own invariants (determinism, SLA bounds,
// policy orderings) but nothing pins their headline NUMBERS release to
// release — a change that doubles the healthy cluster's read p99 while
// staying under every self-assert bound sails through CI silently.  This
// tool closes that gap: a small JSON spec lists metrics (dot-paths into
// the bench reports), each with either a baseline +/- tolerance band or
// explicit min/max bounds, and the tool fails if any lands outside.
//
// Every baselined metric is SIMULATED-time derived and byte-deterministic
// for a given bench invocation (the same property the benches' own
// worker-count determinism asserts stand on), so bands can be tight
// without flaking on machine speed.  Wall-clock fields are deliberately
// not baselined.
//
// Spec format (see tools/bench_baselines.json):
//   {"checks": [
//     {"file": "BENCH_cluster.json",
//      "metric": "self_check.cluster_read_p99_us",
//      "baseline": 1868.48, "tolerance_pct": 25},
//     {"file": "BENCH_cluster.json",
//      "metric": "self_check.wear_drain_epoch", "max": 5},
//     {"file": "BENCH_gc_qos.json", "metric": "...", "min": 1,
//      "optional": true}
//   ]}
// `baseline` + `tolerance_pct` expand to [baseline*(1-t), baseline*(1+t)];
// explicit `min` / `max` (either or both) are absolute bounds and compose
// with the band (the tightest wins).  `optional: true` skips the check
// when its report file is missing (benches gated off some CI legs).
//
// Usage: bench_check <spec.json> [--dir <report-dir>]
// Exit 0 when every check passes, 1 otherwise.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/json.h"

namespace {

using ctflash::campaign::Json;

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("bench_check: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Walks a dot-separated path ("self_check.wear_drain_epoch") into nested
/// objects; an all-digit hop indexes an array ("results.1.read_p99_us").
/// Returns nullptr when any hop is missing.
const Json* Lookup(const Json& root, const std::string& path) {
  const Json* node = &root;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    if (node->IsArray()) {
      if (key.empty() ||
          key.find_first_not_of("0123456789") != std::string::npos) {
        return nullptr;
      }
      const std::size_t index = std::stoull(key);
      if (index >= node->AsArray().size()) return nullptr;
      node = &node->AsArray()[index];
    } else {
      node = node->Get(key);
      if (node == nullptr) return nullptr;
    }
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return node;
}

struct CheckResult {
  std::string label;
  std::string verdict;  // "pass" | "FAIL" | "skip"
  std::string detail;
};

std::string FormatNumber(double v) {
  std::ostringstream out;
  out << std::setprecision(10) << v;
  return out.str();
}

CheckResult RunCheck(const Json& check, const std::string& dir,
                     std::map<std::string, Json>& report_cache) {
  const std::string file = check.GetStringOr("file", "");
  const std::string metric = check.GetStringOr("metric", "");
  CheckResult result;
  result.label = file + " : " + metric;
  if (file.empty() || metric.empty()) {
    result.verdict = "FAIL";
    result.detail = "check needs both \"file\" and \"metric\"";
    return result;
  }

  const std::string path = dir.empty() ? file : dir + "/" + file;
  auto cached = report_cache.find(path);
  if (cached == report_cache.end()) {
    std::ifstream probe(path);
    if (!probe) {
      if (check.GetBoolOr("optional", false)) {
        result.verdict = "skip";
        result.detail = "report missing (optional)";
        return result;
      }
      result.verdict = "FAIL";
      result.detail = "report file missing: " + path;
      return result;
    }
    cached =
        report_cache.emplace(path, Json::Parse(ReadWholeFile(path))).first;
  }

  const Json* node = Lookup(cached->second, metric);
  if (node == nullptr || !node->IsNumber()) {
    result.verdict = "FAIL";
    result.detail = node == nullptr ? "metric path not found"
                                    : "metric is not a number";
    return result;
  }
  const double value = node->AsDouble();

  // Assemble the band: baseline +/- tolerance, clipped by explicit bounds.
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  if (const Json* base = check.Get("baseline"); base != nullptr) {
    const double b = base->AsDouble();
    const double tol = check.GetDoubleOr("tolerance_pct", 0.0) / 100.0;
    lo = b - std::abs(b) * tol;
    hi = b + std::abs(b) * tol;
  }
  if (const Json* mn = check.Get("min"); mn != nullptr) {
    lo = std::max(lo, mn->AsDouble());
  }
  if (const Json* mx = check.Get("max"); mx != nullptr) {
    hi = std::min(hi, mx->AsDouble());
  }
  if (lo == -std::numeric_limits<double>::infinity() &&
      hi == std::numeric_limits<double>::infinity()) {
    result.verdict = "FAIL";
    result.detail = "check has no bound (baseline or min/max required)";
    return result;
  }

  const bool ok = value >= lo && value <= hi;
  result.verdict = ok ? "pass" : "FAIL";
  std::ostringstream detail;
  detail << FormatNumber(value) << " in [" << FormatNumber(lo) << ", "
         << FormatNumber(hi) << "]";
  result.detail = detail.str();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::cerr << "usage: bench_check <spec.json> [--dir <report-dir>]\n";
      return 2;
    }
  }
  if (spec_path.empty()) {
    std::cerr << "usage: bench_check <spec.json> [--dir <report-dir>]\n";
    return 2;
  }

  try {
    const Json spec = Json::Parse(ReadWholeFile(spec_path));
    const Json* checks = spec.Get("checks");
    if (checks == nullptr || checks->AsArray().empty()) {
      std::cerr << "bench_check: spec has no checks\n";
      return 2;
    }

    std::map<std::string, Json> report_cache;
    std::size_t failures = 0;
    std::size_t width = 0;
    std::vector<CheckResult> results;
    for (const Json& check : checks->AsArray()) {
      results.push_back(RunCheck(check, dir, report_cache));
      width = std::max(width, results.back().label.size());
    }
    for (const CheckResult& r : results) {
      if (r.verdict == "FAIL") ++failures;
      std::cout << std::left << std::setw(static_cast<int>(width) + 2)
                << r.label << std::setw(6) << r.verdict << r.detail << "\n";
    }
    std::cout << results.size() << " checks, " << failures << " failed\n";
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
