#include "ftl/ftl_base.h"

#include <algorithm>

#include <stdexcept>

namespace ctflash::ftl {

void FtlConfig::Validate() const {
  if (op_ratio <= 0.0 || op_ratio >= 0.9) {
    throw std::invalid_argument("FtlConfig: op_ratio must be in (0, 0.9)");
  }
  if (gc_threshold_low < 2) {
    throw std::invalid_argument("FtlConfig: gc_threshold_low must be >= 2");
  }
  if (gc_threshold_high <= gc_threshold_low) {
    throw std::invalid_argument(
        "FtlConfig: gc_threshold_high must exceed gc_threshold_low");
  }
  if (write_frontiers == 0) {
    throw std::invalid_argument("FtlConfig: write_frontiers must be >= 1");
  }
}

FtlBase::FtlBase(FlashTarget& target, const FtlConfig& config)
    : target_(target), config_(config), wear_leveler_(config.wear) {
  config_.Validate();
  const std::uint64_t physical = target.geometry().TotalPages();
  logical_pages_ =
      static_cast<std::uint64_t>(static_cast<double>(physical) *
                                 (1.0 - config_.op_ratio));
  if (logical_pages_ == 0) {
    throw std::invalid_argument("FtlBase: device too small for op_ratio");
  }
  // Room for the open write frontiers during GC: up to `write_frontiers`
  // per stream (host + GC relocation), 2 total in the seed configuration.
  const std::uint64_t min_spare =
      config_.gc_threshold_high + 2ull * config_.write_frontiers;
  if (target.geometry().TotalBlocks() <
      min_spare + logical_pages_ / target.geometry().pages_per_block) {
    throw std::invalid_argument(
        "FtlBase: over-provisioning too small for the GC thresholds");
  }
}

void FtlBase::CheckRange(std::uint64_t offset_bytes,
                         std::uint64_t size_bytes) const {
  if (size_bytes == 0) {
    throw std::invalid_argument("FtlBase: zero-sized request");
  }
  if (offset_bytes + size_bytes > LogicalBytes()) {
    throw std::invalid_argument("FtlBase: request beyond logical capacity");
  }
}

RequestResult FtlBase::Read(std::uint64_t offset_bytes,
                            std::uint64_t size_bytes, Us arrival_us) {
  CheckRange(offset_bytes, size_bytes);
  const Lpn first = offset_bytes / PageSize();
  const Lpn last = (offset_bytes + size_bytes - 1) / PageSize();
  const auto pages = static_cast<std::uint32_t>(last - first + 1);
  RequestResult r;
  r.arrival_us = arrival_us;
  r.pages = pages;
  r.completion_us = DoRead(first, pages, offset_bytes, size_bytes, arrival_us);
  if (r.completion_us < arrival_us) r.completion_us = arrival_us;
  stats_.host_read_pages += pages;
  return r;
}

std::optional<BlockId> FtlBase::PickVictim(const BlockManager& blocks) {
  const auto wl = wear_leveler_.MaybeOverrideVictim(blocks, target_.nand());
  if (wl) return wl;
  return blocks.PickGcVictim();
}

std::uint64_t FtlBase::TransferBytesFor(Lpn lpn, std::uint64_t offset_bytes,
                                        std::uint64_t size_bytes) const {
  const std::uint64_t page_start = lpn * PageSize();
  const std::uint64_t page_end = page_start + PageSize();
  const std::uint64_t req_end = offset_bytes + size_bytes;
  const std::uint64_t lo = std::max(page_start, offset_bytes);
  const std::uint64_t hi = std::min(page_end, req_end);
  return hi > lo ? hi - lo : 0;
}

RequestResult FtlBase::Write(std::uint64_t offset_bytes,
                             std::uint64_t size_bytes, Us arrival_us) {
  CheckRange(offset_bytes, size_bytes);
  const Lpn first = offset_bytes / PageSize();
  const Lpn last = (offset_bytes + size_bytes - 1) / PageSize();
  const auto pages = static_cast<std::uint32_t>(last - first + 1);
  RequestResult r;
  r.arrival_us = arrival_us;
  r.pages = pages;
  r.completion_us = DoWrite(first, pages, size_bytes, arrival_us);
  if (r.completion_us < arrival_us) r.completion_us = arrival_us;
  stats_.host_write_pages += pages;
  return r;
}

}  // namespace ctflash::ftl
