// Micro-benchmarks (google-benchmark) for the performance-critical
// components: the structures PPB touches on every host request must stay
// O(1)-ish or the strategy's bookkeeping would eat its own latency gains.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/access_frequency_table.h"
#include "core/two_level_lru.h"
#include "core/virtual_block.h"
#include "ftl/flash_target.h"
#include "ftl/mapping_table.h"
#include "nand/error_model.h"
#include "nand/latency_model.h"
#include "trace/synthetic.h"
#include "util/random.h"

namespace {

using namespace ctflash;

void BM_XoshiroUniform(benchmark::State& state) {
  util::Xoshiro256StarStar rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformBelow(1000003));
  }
}
BENCHMARK(BM_XoshiroUniform);

void BM_ZipfSample(benchmark::State& state) {
  const util::ZipfSampler zipf(static_cast<std::uint64_t>(state.range(0)), 1.1);
  util::Xoshiro256StarStar rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_LatencyModelRead(benchmark::State& state) {
  nand::NandGeometry g;
  nand::NandTiming t;
  t.speed_ratio = 3.0;
  const nand::LatencyModel m(g, t);
  std::uint32_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.ReadUs(page));
    page = (page + 7) % g.pages_per_block;
  }
}
BENCHMARK(BM_LatencyModelRead);

void BM_MappingTableUpdate(benchmark::State& state) {
  ftl::MappingTable map(1 << 16, 1 << 17);
  util::Xoshiro256StarStar rng(3);
  Ppn next = 0;
  for (auto _ : state) {
    const Lpn lpn = rng.UniformBelow(1 << 16);
    const Ppn old = map.Update(lpn, next);
    if (old != kInvalidPpn) map.ReleasePpn(old);  // keep ppns reusable
    benchmark::DoNotOptimize(old);
    next = (next + 1) % (1 << 17);
    // Skip ppns still owned (rare at 2x overprovision in this loop).
    while (map.LpnOf(next) != kInvalidLpn) next = (next + 1) % (1 << 17);
  }
}
BENCHMARK(BM_MappingTableUpdate);

void BM_TwoLevelLruWrite(benchmark::State& state) {
  core::TwoLevelLru lru(8192, 4096);
  util::Xoshiro256StarStar rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru.OnWrite(rng.UniformBelow(1 << 16)));
  }
}
BENCHMARK(BM_TwoLevelLruWrite);

void BM_TwoLevelLruReadPromote(benchmark::State& state) {
  core::TwoLevelLru lru(8192, 4096);
  util::Xoshiro256StarStar rng(5);
  for (Lpn l = 0; l < 8192; ++l) lru.OnWrite(l);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru.OnRead(rng.UniformBelow(8192)));
  }
}
BENCHMARK(BM_TwoLevelLruReadPromote);

void BM_FreqTableOnRead(benchmark::State& state) {
  core::AccessFrequencyTable table(2, 1 << 15);
  util::Xoshiro256StarStar rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.OnRead(rng.UniformBelow(1 << 16)));
  }
}
BENCHMARK(BM_FreqTableOnRead);

void BM_VirtualBlockAllocate(benchmark::State& state) {
  auto bm = std::make_unique<ftl::BlockManager>(1 << 14, 384);
  auto vbm = std::make_unique<core::VirtualBlockManager>(*bm, 384, 2);
  util::Xoshiro256StarStar rng(7);
  for (auto _ : state) {
    const auto level = static_cast<core::HotnessLevel>(rng.UniformBelow(4));
    auto a = vbm->AllocatePage(core::AreaOf(level), level);
    if (!a) {  // device full: reset (excluded cost is negligible amortized)
      state.PauseTiming();
      bm = std::make_unique<ftl::BlockManager>(1 << 14, 384);
      vbm = std::make_unique<core::VirtualBlockManager>(*bm, 384, 2);
      state.ResumeTiming();
      continue;
    }
    benchmark::DoNotOptimize(a->ppn);
  }
}
BENCHMARK(BM_VirtualBlockAllocate);

void BM_FlashTargetReadServiceTime(benchmark::State& state) {
  nand::NandGeometry g;
  g.blocks_per_plane = 4;
  ftl::FlashTarget ft(g, nand::NandTiming{});
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    ft.ProgramPage(g.PpnOf(0, p), 0);
  }
  std::uint32_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ft.ReadPage(g.PpnOf(0, page), 0));
    page = (page + 13) % g.pages_per_block;
  }
}
BENCHMARK(BM_FlashTargetReadServiceTime);

void BM_ErrorModelSample(benchmark::State& state) {
  nand::NandGeometry g;
  const nand::LayerErrorModel model(g, nand::ErrorModelConfig{});
  util::Xoshiro256StarStar rng(8);
  std::uint32_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.SampleBitErrors(page, 1000, rng));
    page = (page + 31) % g.pages_per_block;
  }
}
BENCHMARK(BM_ErrorModelSample);

void BM_SyntheticTraceNext(benchmark::State& state) {
  auto cfg = trace::WebServerWorkload(1ull << 30, 1);
  trace::SyntheticTraceGenerator gen(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_SyntheticTraceNext);

}  // namespace

BENCHMARK_MAIN();
