// Seeded media-fault injection for reliability campaigns.
//
// A FaultPlanConfig describes *what* can go wrong — per-fault-class
// probabilities and schedules — and a FaultInjector draws the actual fault
// sequence deterministically from one seed:
//
//   * program-fail:  each page program independently fails verify with
//     `program_fail_prob` (the page is consumed; the FTL re-allocates and
//     flags the block for retirement at its next erase);
//   * erase-fail:    each block erase independently fails verify with
//     `erase_fail_prob` (the FTL retires the block as grown-bad);
//   * read-disturb:  every read of a block inflates the whole block's RBER
//     by `read_disturb_per_read` per accumulated read since the last erase;
//   * retention:     a static `retention_rber_multiplier` on all reads,
//     modeling an aged / hot device;
//   * die/channel loss: from `fail_at_us` onward the dies in `fail_dies`
//     and every die on the channels in `fail_channels` stop responding —
//     reads of resident data are lost, programs/erases fail.
//
// The injector is part of the device state: config, RNG, and per-block read
// counters all round-trip through SaveState/LoadState bit-exactly, so a
// snapshot taken mid-campaign resumes the same fault schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "nand/geometry.h"
#include "util/random.h"
#include "util/serial.h"
#include "util/types.h"

namespace ctflash::nand {

struct FaultPlanConfig {
  double program_fail_prob = 0.0;          ///< per-program verify-fail prob
  double erase_fail_prob = 0.0;            ///< per-erase verify-fail prob
  double read_disturb_per_read = 0.0;      ///< RBER inflation per block read
  double retention_rber_multiplier = 1.0;  ///< static RBER multiplier (>= 1)
  std::vector<std::uint64_t> fail_dies;    ///< global die indices that die
  std::vector<std::uint32_t> fail_channels;  ///< channels that drop whole
  Us fail_at_us = 0;                       ///< when the die/channel loss hits

  /// True when any fault class is active (an injector is worth arming).
  bool Armed() const {
    return program_fail_prob > 0.0 || erase_fail_prob > 0.0 ||
           read_disturb_per_read > 0.0 || retention_rber_multiplier > 1.0 ||
           !fail_dies.empty() || !fail_channels.empty();
  }

  void Validate() const;
};

class FaultInjector {
 public:
  FaultInjector(const NandGeometry& geometry, const FaultPlanConfig& config,
                std::uint64_t seed);

  const FaultPlanConfig& config() const { return config_; }

  /// Draws whether this program / erase fails verify.  Consumes RNG only
  /// when the corresponding probability is non-zero, so disabled fault
  /// classes leave the draw sequence of the enabled ones untouched.
  bool DrawProgramFail() {
    return config_.program_fail_prob > 0.0 &&
           rng_.Bernoulli(config_.program_fail_prob);
  }
  bool DrawEraseFail() {
    return config_.erase_fail_prob > 0.0 &&
           rng_.Bernoulli(config_.erase_fail_prob);
  }

  /// True when the block sits on a die/channel that is lost at time `now`.
  bool Unreachable(BlockId block, Us now) const;

  /// RBER multiplier for reads of `block`: retention floor plus accumulated
  /// read disturb since the block's last erase.
  double RberScale(BlockId block) const;

  /// Bumps the block's read-disturb counter / resets it on erase.
  void OnRead(BlockId block);
  void OnErase(BlockId block);

  std::uint64_t ReadsSinceErase(BlockId block) const {
    return reads_since_erase_[block];
  }

  void SaveState(util::StateWriter& w) const;
  /// Rebuilds an injector from serialized state (geometry must match the
  /// owning device; the serialized config replaces the constructor's).
  void LoadState(util::StateReader& r);

 private:
  NandGeometry geometry_;
  FaultPlanConfig config_;
  util::Xoshiro256StarStar rng_;
  std::vector<std::uint64_t> reads_since_erase_;  // one per block
  std::vector<bool> die_lost_;                    // one per global die
};

}  // namespace ctflash::nand
