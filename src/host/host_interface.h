// NVMe-flavored multi-queue host interface: the traffic-serving front end
// of the simulated device.
//
// Byte-range requests enter one of `num_queues` bounded submission queues
// (round-robin placement, as a multi-core driver would distribute them),
// are split into page-level flash transactions, and dispatch out-of-order
// across channels/chips/dies through the IoScheduler.  A request's queue
// slot stays occupied until its last page completes (the completion-queue
// entry), so num_queues * queue_capacity bounds outstanding requests;
// submissions beyond that wait in a host-side backlog — a blocked
// submitter, never dropped work.
//
// Offsets are clipped into the exported logical space the same way the
// trace-replay harness clips them (wrapped traces), so any TraceRecord can
// be submitted directly.
//
// All progress is driven by the owned sim::EventQueue: Submit() computes
// flash timing through the resource timelines and completions fire as
// events, which makes runs bit-for-bit deterministic.  Construct the Ssd
// with TimingMode::kQueued — with pure service-time accounting there is no
// contention and queue depth cannot matter.
// Multi-tenant QoS (HostConfig::qos): tenants own disjoint submission
// queues and submit through SubmitAs/SubmitAtAs.  Admission applies the
// tenant's token buckets first — a rate-limited request waits in a
// host-side per-tenant pacing queue and never occupies a queue slot — and
// the scheduler arbitrates tenants inside each priority class by weighted
// deficit round robin (see io_scheduler.h and src/qos/).  An empty
// QosConfig keeps the pre-QoS single-tenant path bit-identical to the seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "host/io_scheduler.h"
#include "host/request.h"
#include "qos/tenant.h"
#include "qos/tenant_table.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace ctflash::obs {
class Tracer;
}

namespace ctflash::host {

struct HostConfig {
  std::uint32_t num_queues = 4;      ///< submission/completion queue pairs
  std::uint32_t queue_capacity = 64; ///< outstanding requests per queue
  std::uint32_t device_slots = 32;   ///< in-flight page transactions
  SchedPolicy policy = SchedPolicy::kOutOfOrder;
  /// Scheduled-GC aging bound: a waiting GC transaction overtaken by this
  /// many host dispatches is boosted above host writes (see io_scheduler.h).
  std::uint32_t gc_aging_limit = 64;
  /// Host-write aging bound: a ready host write overtaken by this many
  /// host-READ dispatches is boosted into the read rank, closing the
  /// open-loop read-flood starvation gap.  0 (default) disables the bound
  /// and preserves the seed dispatch order bit-for-bit.
  std::uint32_t write_aging_limit = 0;
  /// Multi-tenant QoS; empty (default) disables the layer entirely.
  /// Requires SchedPolicy::kOutOfOrder (weights rank, FIFO cannot).
  qos::QosConfig qos;

  void Validate() const;
};

class HostInterface {
 public:
  using CompletionCallback = std::function<void(const HostCompletion&)>;

  HostInterface(ssd::Ssd& ssd, const HostConfig& config);

  HostInterface(const HostInterface&) = delete;
  HostInterface& operator=(const HostInterface&) = delete;

  /// Submits a request at the current simulated time; returns its id.
  /// `cb` (optional) fires when the last page transaction completes.
  /// With tenants configured this is SubmitAs(tenant 0, ...).
  std::uint64_t Submit(trace::OpType op, std::uint64_t offset_bytes,
                       std::uint64_t size_bytes,
                       CompletionCallback cb = nullptr);

  /// Schedules a submission at absolute simulated time `at` (open-loop
  /// arrivals from trace timestamps).
  void SubmitAt(Us at, trace::OpType op, std::uint64_t offset_bytes,
                std::uint64_t size_bytes, CompletionCallback cb = nullptr);

  /// Multi-tenant submission: rate-limit admission against `tenant`'s
  /// token buckets (waiting host-side in its pacing queue if throttled),
  /// then round-robin across the tenant's own submission queues.  Requires
  /// a HostConfig with tenants configured; throws std::logic_error
  /// otherwise, std::out_of_range for an unknown tenant.
  std::uint64_t SubmitAs(qos::TenantId tenant, trace::OpType op,
                         std::uint64_t offset_bytes, std::uint64_t size_bytes,
                         CompletionCallback cb = nullptr);

  /// Open-loop arrival for a tenant (SubmitAs at absolute time `at`).
  void SubmitAtAs(Us at, qos::TenantId tenant, trace::OpType op,
                  std::uint64_t offset_bytes, std::uint64_t size_bytes,
                  CompletionCallback cb = nullptr);

  /// Runs the event queue until all submitted work has completed.
  void Run() { queue_.RunToCompletion(); }

  /// Advances simulated time without submitting (e.g. past the end of a
  /// synchronous prefill, whose flash work already booked the timelines).
  void AdvanceTo(Us at) { queue_.RunUntil(at); }

  sim::EventQueue& queue() { return queue_; }
  ssd::Ssd& ssd() { return ssd_; }
  const HostConfig& config() const { return config_; }
  const HostStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = HostStats{};
    stats_.per_queue.resize(config_.num_queues);
    if (tenants_) tenants_->ResetStats();
  }

  /// Non-null only with tenants configured (per-tenant telemetry, DRR
  /// deficits, throttle counters).
  qos::TenantTable* tenants() { return tenants_.get(); }
  const qos::TenantTable* tenants() const { return tenants_.get(); }
  /// Requests waiting host-side in `tenant`'s rate-limit pacing queue;
  /// 0 for unknown tenants and for hosts without tenants configured.
  std::size_t PacedDepth(qos::TenantId tenant) const {
    return tenant < pace_queues_.size() ? pace_queues_[tenant].size() : 0;
  }

  /// Admitted-but-incomplete requests across all queues.
  std::uint32_t Outstanding() const { return outstanding_; }
  std::size_t BacklogDepth() const { return backlog_.size(); }
  std::uint64_t TxnsDispatched() const { return scheduler_.DispatchedCount(); }
  std::uint32_t PeakDeviceInFlight() const {
    return scheduler_.PeakInFlight();
  }

  /// Direct scheduler access (GC-routing counters, test dispatch hooks).
  IoScheduler& scheduler() { return scheduler_; }
  const IoScheduler& scheduler() const { return scheduler_; }

  /// Wires a lifecycle tracer (borrowed; must outlive this host) into all
  /// three seams at once: the host admission hooks here, the scheduler's
  /// observer list, and the flash target's media hook.  Pass nullptr to
  /// detach.  Without a tracer every hook site is one null check.
  void AttachTracer(obs::Tracer* tracer);
  obs::Tracer* tracer() { return tracer_; }

 private:
  struct Pending {
    HostRequest request;
    std::uint32_t qid = 0;
    std::uint32_t pages = 0;
    std::uint32_t pages_left = 0;
    Us completion_us = 0;
    CompletionCallback cb;
  };

  /// Places the request in submission queue `qid` and hands its page
  /// transactions to the scheduler.
  void Admit(HostRequest request, std::uint32_t qid, CompletionCallback cb);
  /// Tenant placement: round-robin over the tenant's queues with
  /// fall-through; full queues push to the tenant's backlog.
  void PlaceTenantRequest(qos::TenantId tenant, HostRequest request,
                          CompletionCallback cb);
  /// Drains `tenant`'s pacing queue while its buckets allow, rescheduling
  /// itself at the next admission time otherwise.
  void PumpPaceQueue(qos::TenantId tenant);
  void OnTxnComplete(const FlashTransaction& txn,
                     const ftl::RequestResult& result);
  /// Retires a fully completed request: stats, queue slot, backlog pull,
  /// completion callback.
  void FinalizeRequest(std::uint64_t id);

  ssd::Ssd& ssd_;
  HostConfig config_;
  sim::EventQueue queue_;
  /// Built before the scheduler, which borrows it for arbitration.
  std::unique_ptr<qos::TenantTable> tenants_;
  IoScheduler scheduler_;
  HostStats stats_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<std::uint32_t> queue_fill_;  ///< occupancy per submission queue
  std::deque<std::pair<HostRequest, CompletionCallback>> backlog_;
  /// Per-tenant state (sized TenantCount() in multi-tenant mode, else
  /// empty): rate-limit pacing queues (FIFO; at most one wake event armed
  /// per tenant), queue-placement cursors, and full-queue backlogs.
  std::vector<std::deque<std::pair<HostRequest, CompletionCallback>>>
      pace_queues_;
  std::vector<std::uint32_t> tenant_rr_;
  std::vector<std::deque<std::pair<HostRequest, CompletionCallback>>>
      tenant_backlogs_;
  std::uint64_t next_id_ = 1;
  std::uint32_t rr_next_queue_ = 0;
  std::uint32_t outstanding_ = 0;
  /// Borrowed lifecycle tracer; null (the default) disables tracing.
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace ctflash::host
