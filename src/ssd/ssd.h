// Ssd: the assembled device — NAND array + timing fabric + selected FTL.
//
// This is the library's main entry point for applications: construct an
// SsdConfig (Table1Config() gives the paper's device), pick the FTL kind,
// and issue Read/Write with byte offsets.  All returned latencies come from
// the shared flash timing model, so conventional vs PPB comparisons are
// apples-to-apples.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/ppb_ftl.h"
#include "ftl/conventional_ftl.h"
#include "ftl/flash_target.h"
#include "ftl/ftl_base.h"
#include "nand/geometry.h"
#include "nand/latency_model.h"
#include "sched/transaction.h"
#include "sim/event_queue.h"
#include "util/types.h"

namespace ctflash::campaign {
struct DeviceState;
}

namespace ctflash::ssd {

enum class FtlKind { kConventional = 0, kPpb = 1 };

const char* FtlKindName(FtlKind kind);

struct SsdConfig {
  nand::NandGeometry geometry;     ///< defaults = paper Table 1 (64 GiB)
  nand::NandTiming timing;         ///< defaults = paper Table 1
  ftl::FtlConfig ftl;
  core::PpbConfig ppb;             ///< used only when kind == kPpb
  FtlKind kind = FtlKind::kConventional;
  ftl::TimingMode timing_mode = ftl::TimingMode::kServiceTime;
  std::uint32_t endurance_pe_cycles = 1'000'000;
  /// Arm the synthetic layer error model on every read (reliability study).
  bool model_read_errors = false;
  nand::ErrorModelConfig error_model;
  std::uint64_t error_model_seed = 0x5EED;

  void Validate() const;
};

/// The paper's Table 1 device verbatim.
SsdConfig Table1Config(FtlKind kind = FtlKind::kConventional);

/// Table 1 timing/shape on a proportionally scaled-down array so experiments
/// replay large traces in seconds.  `page_size` of 8 KiB or 16 KiB matches
/// the paper's page-size sweep; `speed_ratio` is the 2x..5x asymmetry.
SsdConfig ScaledConfig(FtlKind kind, std::uint64_t device_bytes,
                       std::uint32_t page_size_bytes, double speed_ratio);

/// Same, but scaling down from `base_shape` instead of the Table 1 geometry
/// — lets parallelism studies vary channel/chip/die counts while keeping
/// the block shape and capacity comparable.
SsdConfig ScaledConfig(FtlKind kind, std::uint64_t device_bytes,
                       std::uint32_t page_size_bytes, double speed_ratio,
                       const nand::NandGeometry& base_shape);

class Ssd {
 public:
  explicit Ssd(const SsdConfig& config);

  Ssd(const Ssd&) = delete;
  Ssd& operator=(const Ssd&) = delete;

  /// Host operations; see ftl::FtlBase for semantics.
  ftl::RequestResult Read(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                          Us arrival_us);
  ftl::RequestResult Write(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                           Us arrival_us);

  /// Asynchronous submit/completion path used by the host interface
  /// (src/host/).  The request is serviced through the FTL at `queue.Now()`
  /// — resource timelines supply queueing delay in TimingMode::kQueued —
  /// and `cb` fires as an event at the resulting completion time, so many
  /// submissions can be in flight across channels/chips/dies at once.  The
  /// synchronous Read/Write above remain the QD=1 special case.
  using CompletionCallback = std::function<void(const ftl::RequestResult&)>;
  void SubmitRead(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                  sim::EventQueue& queue, CompletionCallback cb);
  void SubmitWrite(std::uint64_t offset_bytes, std::uint64_t size_bytes,
                   sim::EventQueue& queue, CompletionCallback cb);
  /// Executes one scheduled-GC transaction (relocation copy or victim
  /// erase) drained from the FTL planner at `queue.Now()`; `cb` fires at
  /// its completion time.  Host-scheduler use only (gc_routing =
  /// kScheduled); see ftl::FtlBase::ExecuteGcTransaction.
  void SubmitGc(const sched::FlashTransaction& txn, sim::EventQueue& queue,
                CompletionCallback cb);

  std::uint64_t LogicalBytes() const { return ftl_->LogicalBytes(); }
  std::string FtlName() const { return ftl_->Name(); }
  const SsdConfig& config() const { return config_; }

  ftl::FtlBase& ftl() { return *ftl_; }
  const ftl::FtlBase& ftl() const { return *ftl_; }
  ftl::FlashTarget& target() { return *target_; }
  const ftl::FlashTarget& target() const { return *target_; }

  /// Non-null only when configured with FtlKind::kPpb.
  core::PpbFtl* ppb() { return ppb_; }
  const core::PpbFtl* ppb() const { return ppb_; }

  /// Captures the complete device state (campaign/snapshot.h) stamped with
  /// `clock_us` (typically the prefill-end simulated time).  The device
  /// must be quiesced: throws std::logic_error while scheduled-GC
  /// transactions are in flight.  Implemented in campaign/snapshot.cc.
  campaign::DeviceState Snapshot(Us clock_us = 0) const;

  /// Restores state captured from a device of the same shape; throws
  /// std::runtime_error when the shape key does not match this config or
  /// the payload is malformed.  Counters and RNG streams resume exactly
  /// where the producing device left off.
  void Restore(const campaign::DeviceState& state);

 private:
  SsdConfig config_;
  std::unique_ptr<ftl::FlashTarget> target_;
  std::unique_ptr<ftl::FtlBase> ftl_;
  core::PpbFtl* ppb_ = nullptr;  // borrowed view into ftl_
};

}  // namespace ctflash::ssd
