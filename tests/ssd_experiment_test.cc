#include "ssd/experiment.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/synthetic.h"

namespace ctflash::ssd {
namespace {

SsdConfig Cfg(FtlKind kind = FtlKind::kConventional) {
  return ScaledConfig(kind, 1ull << 28, 16 * 1024, 2.0);  // 256 MiB
}

TEST(Enhancement, Definition) {
  EXPECT_DOUBLE_EQ(Enhancement(100.0, 90.0), 0.10);
  EXPECT_DOUBLE_EQ(Enhancement(100.0, 110.0), -0.10);
  EXPECT_DOUBLE_EQ(Enhancement(0.0, 5.0), 0.0);  // degenerate base
}

TEST(ExperimentRunner, PrefillMapsFootprintAndResetsStats) {
  Ssd ssd(Cfg());
  ExperimentRunner runner(ssd);
  const std::uint64_t footprint = ssd.LogicalBytes() / 2;
  const Us spent = runner.Prefill(footprint);
  EXPECT_GT(spent, 0);
  // Stats were reset after prefill...
  EXPECT_EQ(ssd.ftl().stats().host_write_pages, 0u);
  EXPECT_EQ(ssd.target().nand().counters().programs, 0u);
  // ...but the data remains readable with real latency.
  const auto r = ssd.Read(0, 16 * 1024, spent);
  EXPECT_GT(r.LatencyUs(), 0);
}

TEST(ExperimentRunner, PrefillClipsToLogicalCapacity) {
  Ssd ssd(Cfg());
  ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes() * 10);  // oversized: clipped, no throw
  const auto r = ssd.Read(ssd.LogicalBytes() - 16 * 1024, 16 * 1024, 0);
  EXPECT_GT(r.LatencyUs(), 0);
}

TEST(ExperimentRunner, PrefillZeroChunkRejected) {
  Ssd ssd(Cfg());
  ExperimentRunner runner(ssd);
  EXPECT_THROW(runner.Prefill(1 << 20, 0), std::invalid_argument);
}

TEST(ExperimentRunner, ReplayAggregatesByOp) {
  Ssd ssd(Cfg());
  ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes() / 2);
  std::vector<trace::TraceRecord> recs = {
      {0, trace::OpType::kWrite, 0, 16 * 1024},
      {10, trace::OpType::kRead, 0, 16 * 1024},
      {20, trace::OpType::kRead, 16 * 1024, 16 * 1024},
  };
  const auto res = runner.Replay(recs, "tiny");
  EXPECT_EQ(res.workload_name, "tiny");
  EXPECT_EQ(res.ftl_name, "conventional-ftl");
  EXPECT_EQ(res.read_latency.count(), 2u);
  EXPECT_EQ(res.write_latency.count(), 1u);
  EXPECT_EQ(res.host_read_pages, 2u);
  EXPECT_EQ(res.host_write_pages, 1u);
  EXPECT_GT(res.TotalReadSeconds(), 0.0);
  EXPECT_GE(res.waf, 1.0);
}

TEST(ExperimentRunner, OutOfRangeRecordsWrapAndClip) {
  Ssd ssd(Cfg());
  ExperimentRunner runner(ssd);
  runner.Prefill(ssd.LogicalBytes());
  std::vector<trace::TraceRecord> recs = {
      {0, trace::OpType::kRead, ssd.LogicalBytes() + 4096, 16 * 1024},
      {0, trace::OpType::kRead, ssd.LogicalBytes() - 4096, 1 << 20},
  };
  const auto res = runner.Replay(recs, "wrap");
  EXPECT_EQ(res.read_latency.count(), 2u);  // both served after wrap/clip
}

TEST(ExperimentRunner, ClosedLoopNeverOverlapsRequests) {
  Ssd ssd(Cfg());
  ExperimentRunner runner(ssd, /*closed_loop=*/true);
  runner.Prefill(ssd.LogicalBytes() / 2);
  // All arrivals at t=0: closed loop serializes them.
  std::vector<trace::TraceRecord> recs;
  for (int i = 0; i < 50; ++i) {
    recs.push_back({0, trace::OpType::kRead,
                    static_cast<std::uint64_t>(i) * 16 * 1024, 16 * 1024});
  }
  const auto res = runner.Replay(recs, "burst");
  // Per-request latency stays service-time bounded (no queue explosion).
  EXPECT_LT(res.read_latency.max_us(), 200.0);
  EXPECT_GT(res.sim_end_us, 0);
}

TEST(RunExperiment, DeterministicEndToEnd) {
  const auto wl = trace::WebServerWorkload(64ull << 20, 5000);
  const auto recs = trace::SyntheticTraceGenerator(wl).Generate();
  const auto a = RunExperiment(Cfg(FtlKind::kPpb), recs, 64ull << 20, wl.name);
  const auto b = RunExperiment(Cfg(FtlKind::kPpb), recs, 64ull << 20, wl.name);
  EXPECT_DOUBLE_EQ(a.TotalReadSeconds(), b.TotalReadSeconds());
  EXPECT_DOUBLE_EQ(a.TotalWriteSeconds(), b.TotalWriteSeconds());
  EXPECT_EQ(a.erase_count, b.erase_count);
  EXPECT_EQ(a.gc_page_copies, b.gc_page_copies);
}

}  // namespace
}  // namespace ctflash::ssd
