#include "replay/workload_profile.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ctflash::replay {

void WorkloadProfileConfig::Validate() const {
  if (region_bytes == 0) {
    throw std::invalid_argument(
        "WorkloadProfileConfig: region_bytes must be > 0");
  }
  if (window_us <= 0) {
    throw std::invalid_argument("WorkloadProfileConfig: window_us must be > 0");
  }
  if (max_distinct_sizes == 0) {
    throw std::invalid_argument(
        "WorkloadProfileConfig: max_distinct_sizes must be > 0");
  }
}

WorkloadProfiler::WorkloadProfiler(const WorkloadProfileConfig& config)
    : config_(config) {
  config_.Validate();
  profile_.config = config_;
}

void WorkloadProfiler::Add(const trace::TraceRecord& record) {
  if (record.size_bytes == 0) return;
  profile_.requests++;
  if (record.timestamp_us > profile_.duration_us) {
    profile_.duration_us = record.timestamp_us;
  }
  const std::uint64_t end = record.offset_bytes + record.size_bytes;
  if (end > profile_.max_offset_bytes) profile_.max_offset_bytes = end;
  profile_.alignment_or |= record.offset_bytes | record.size_bytes;

  const bool is_read = record.op == trace::OpType::kRead;
  auto& size_counts =
      is_read ? profile_.read_size_counts : profile_.write_size_counts;
  if (is_read) {
    profile_.reads++;
    profile_.read_bytes += record.size_bytes;
    profile_.read_size_hist.Add(record.size_bytes);
  } else {
    profile_.writes++;
    profile_.write_bytes += record.size_bytes;
    profile_.write_size_hist.Add(record.size_bytes);
  }
  if (size_counts.size() < config_.max_distinct_sizes ||
      size_counts.count(record.size_bytes) > 0) {
    size_counts[record.size_bytes]++;
  }

  // Sequentiality (per op class): starts exactly at the previous end.
  if (is_read) {
    if (have_read_ && record.offset_bytes == prev_read_end_) {
      profile_.sequential_reads++;
      current_read_run_++;
    } else {
      if (current_read_run_ > 0) {
        run_length_.Add(static_cast<double>(current_read_run_ + 1));
      }
      current_read_run_ = 0;
    }
    prev_read_end_ = end;
    have_read_ = true;
  } else {
    if (have_write_ && record.offset_bytes == prev_write_end_) {
      profile_.sequential_writes++;
    }
    prev_write_end_ = end;
    have_write_ = true;
  }

  // Region popularity + working set over time.
  const std::uint64_t first_region = record.offset_bytes / config_.region_bytes;
  const std::uint64_t last_region = (end - 1) / config_.region_bytes;
  auto& touches =
      is_read ? profile_.read_region_touches : profile_.write_region_touches;
  const std::size_t window =
      static_cast<std::size_t>(record.timestamp_us / config_.window_us);
  if (window != window_index_) {
    // Windows can arrive out of order only for clamped MSR timestamps;
    // fold into the later window rather than reopening an old one.
    if (window > window_index_) {
      profile_.working_set_regions.resize(window, 0);
      profile_.working_set_regions[window_index_] =
          static_cast<std::uint64_t>(window_regions_.size());
      window_regions_.clear();
      window_index_ = window;
    }
  }
  for (std::uint64_t region = first_region; region <= last_region; ++region) {
    touches[region]++;
    window_regions_.insert(region);
    all_regions_.insert(region);
  }
}

namespace {

/// Least-squares slope of ln(count) over ln(rank+1), counts sorted
/// descending: the Zipf exponent estimate (negated).  0 for degenerate
/// inputs.
double FitZipfTheta(
    const std::unordered_map<std::uint64_t, std::uint64_t>& touches) {
  if (touches.size() < 2) return 0.0;
  std::vector<std::uint64_t> counts;
  counts.reserve(touches.size());
  for (const auto& [region, count] : touches) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const double n = static_cast<double>(counts.size());
  for (std::size_t rank = 0; rank < counts.size(); ++rank) {
    const double x = std::log(static_cast<double>(rank + 1));
    const double y = std::log(static_cast<double>(counts[rank]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (denom <= 0.0) return 0.0;
  const double slope = (n * sxy - sx * sy) / denom;
  return std::clamp(-slope, 0.0, 3.0);
}

/// Regions holding the top `fraction` of the sorted-descending counts.
std::vector<std::uint64_t> TopRegions(
    const std::unordered_map<std::uint64_t, std::uint64_t>& touches,
    double fraction) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(touches.begin(),
                                                              touches.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(sorted.size()) *
                                  fraction));
  std::vector<std::uint64_t> regions;
  regions.reserve(keep);
  for (std::size_t i = 0; i < keep && i < sorted.size(); ++i) {
    regions.push_back(sorted[i].first);
  }
  return regions;
}

double TopShare(const std::unordered_map<std::uint64_t, std::uint64_t>& touches,
                double fraction) {
  if (touches.empty()) return 0.0;
  std::vector<std::uint64_t> counts;
  counts.reserve(touches.size());
  std::uint64_t total = 0;
  for (const auto& [region, count] : touches) {
    counts.push_back(count);
    total += count;
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const std::size_t keep = std::max<std::size_t>(
      1,
      static_cast<std::size_t>(static_cast<double>(counts.size()) * fraction));
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < keep && i < counts.size(); ++i) top += counts[i];
  return total == 0 ? 0.0
                    : static_cast<double>(top) / static_cast<double>(total);
}

std::vector<trace::SizeWeight> FitSizes(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts,
    std::size_t top_n) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(counts.begin(),
                                                              counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<trace::SizeWeight> out;
  for (std::size_t i = 0; i < sorted.size() && i < top_n; ++i) {
    out.push_back({sorted[i].first, static_cast<double>(sorted[i].second)});
  }
  if (out.empty()) out.push_back({16 * kKiB, 1.0});
  return out;
}

}  // namespace

WorkloadProfile WorkloadProfiler::Finish() const {
  WorkloadProfile profile = profile_;
  // Close the open sequential run and working-set window.
  util::RunningMoments runs = run_length_;
  if (current_read_run_ > 0) {
    runs.Add(static_cast<double>(current_read_run_ + 1));
  }
  profile.read_run_length = runs;
  profile.working_set_regions.resize(window_index_ + 1, 0);
  profile.working_set_regions[window_index_] =
      static_cast<std::uint64_t>(window_regions_.size());
  profile.distinct_regions = static_cast<std::uint64_t>(all_regions_.size());

  profile.read_zipf_theta = FitZipfTheta(profile.read_region_touches);
  profile.write_zipf_theta = FitZipfTheta(profile.write_region_touches);

  std::unordered_map<std::uint64_t, std::uint64_t> combined =
      profile.read_region_touches;
  for (const auto& [region, count] : profile.write_region_touches) {
    combined[region] += count;
  }
  profile.top1pct_share = TopShare(combined, 0.01);
  profile.top10pct_share = TopShare(combined, 0.10);

  if (!profile.read_region_touches.empty() &&
      !profile.write_region_touches.empty()) {
    const auto read_top = TopRegions(profile.read_region_touches, 0.10);
    const auto write_top = TopRegions(profile.write_region_touches, 0.10);
    const std::unordered_set<std::uint64_t> read_set(read_top.begin(),
                                                     read_top.end());
    std::size_t overlap = 0;
    for (const std::uint64_t region : write_top) {
      if (read_set.count(region) > 0) overlap++;
    }
    profile.rw_popularity_overlap =
        static_cast<double>(overlap) /
        static_cast<double>(std::max<std::size_t>(1, write_top.size()));
  }
  return profile;
}

trace::SyntheticWorkloadConfig WorkloadProfile::FitSynthetic(
    const std::string& name, std::uint64_t num_requests) const {
  trace::SyntheticWorkloadConfig fit;
  fit.name = name;
  fit.num_requests = num_requests > 0 ? num_requests : requests;
  const std::uint64_t region = config.region_bytes;
  fit.region_bytes = region;
  fit.footprint_bytes =
      std::max(region, (max_offset_bytes + region - 1) / region * region);
  fit.read_fraction = ReadFraction();
  fit.read_zipf_theta = read_zipf_theta;
  fit.write_zipf_theta = write_zipf_theta;
  fit.rw_popularity_correlation = rw_popularity_overlap;
  fit.sequential_read_fraction = SequentialReadFraction();
  fit.read_sizes = FitSizes(read_size_counts, 4);
  fit.write_sizes = FitSizes(write_size_counts, 4);
  fit.mean_interarrival_us =
      requests == 0 ? 1
                    : std::max<Us>(1, duration_us / static_cast<Us>(requests));

  // Alignment: the largest power of two dividing every offset and size
  // (the streaming OR accumulator covers all records, not just the capped
  // distinct-size tables), clamped to the range the generators accept
  // sensibly.
  const std::uint64_t bits = alignment_or;
  std::uint64_t align = bits == 0 ? 4096 : (bits & ~(bits - 1));
  align = std::clamp<std::uint64_t>(align, 512, 64 * kKiB);
  fit.alignment_bytes = align;
  return fit;
}

WorkloadProfile Characterize(TraceSource& source,
                             const WorkloadProfileConfig& config) {
  source.Reset();
  WorkloadProfiler profiler(config);
  while (auto record = source.Next()) profiler.Add(*record);
  return profiler.Finish();
}

std::string ProfileSummary(const WorkloadProfile& profile) {
  std::ostringstream os;
  os << "requests=" << profile.requests << " (" << profile.reads << " reads / "
     << profile.writes << " writes, read fraction "
     << profile.ReadFraction() << ")\n"
     << "volume: read " << profile.read_bytes / kMiB << " MiB, write "
     << profile.write_bytes / kMiB << " MiB, footprint "
     << profile.max_offset_bytes / kMiB << " MiB, duration "
     << profile.duration_us / 1000 << " ms (native "
     << profile.NativeIops() << " IOPS)\n"
     << "sequential reads: " << profile.SequentialReadFraction() * 100.0
     << " % (mean run " << profile.read_run_length.mean() << " reqs)\n"
     << "popularity: zipf theta read " << profile.read_zipf_theta
     << " / write " << profile.write_zipf_theta << ", top-1% share "
     << profile.top1pct_share * 100.0 << " %, top-10% share "
     << profile.top10pct_share * 100.0 << " %, rw overlap "
     << profile.rw_popularity_overlap << "\n"
     << "working set: " << profile.distinct_regions << " regions ("
     << profile.distinct_regions * profile.config.region_bytes / kMiB
     << " MiB) over " << profile.working_set_regions.size() << " windows";
  return os.str();
}

}  // namespace ctflash::replay
