// Figure 18 — Erased Block Count Comparison.
//
// Total erased blocks of conventional FTL vs FTL+PPB for both traces.
// Paper shape: PPB "not increased excessively" — the virtual-block pairing
// keeps hot and cold data out of the same physical block, so GC efficiency
// is retained despite the hotness-aware placement.
#include <iostream>

#include "harness.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;
  const auto options = bench::BenchOptions::FromArgs(argc, argv);
  bench::PrintHeader("Figure 18: Erased Block Count Comparison", "Figure 18",
                     options);

  util::TablePrinter table({"Trace", "Conventional FTL", "FTL with PPB",
                            "Ratio", "WAF conv", "WAF ppb"});
  for (const auto workload :
       {bench::Workload::kMediaServer, bench::Workload::kWebServer}) {
    const auto cmp =
        bench::RunComparison(workload, 16 * 1024, /*speed_ratio=*/2.0, options);
    const double ratio =
        cmp.conventional.erase_count == 0
            ? 1.0
            : static_cast<double>(cmp.ppb.erase_count) /
                  static_cast<double>(cmp.conventional.erase_count);
    table.AddRow({bench::WorkloadName(workload),
                  std::to_string(cmp.conventional.erase_count),
                  std::to_string(cmp.ppb.erase_count),
                  util::TablePrinter::FormatDouble(ratio, 3),
                  util::TablePrinter::FormatDouble(cmp.conventional.waf, 3),
                  util::TablePrinter::FormatDouble(cmp.ppb.waf, 3)});
  }
  table.Print();
  std::cout << "\nPaper shape: PPB erase counts within a few percent of the\n"
               "conventional FTL (garbage collection efficiency retained).\n";
  return 0;
}
