// Campaign specification: a JSON-declared grid of experiment arms.
//
// The spec follows the fleet-campaign config style: a `defaults` object
// holds the full arm configuration once, a `grid` object maps dotted
// override paths to value lists (expanded as a cartesian product), and an
// optional `arms` list adds hand-written overrides; every grid combination
// is crossed with every listed arm.  `workers: N` sizes the runner's thread
// pool.  Example:
//
//   {
//     "campaign": "ftl-sweep",
//     "workers": 4,
//     "defaults": {
//       "device_bytes": "256MiB",
//       "ftl": "conventional",
//       "gc_routing": "inline",
//       "prefill_pct": 85,
//       "seed": 1,
//       "workload": {"kind": "closed_loop", "requests": 20000,
//                     "queue_depth": 16, "read_fraction": 0.5}
//     },
//     "grid": {"ftl": ["conventional", "ppb"],
//              "gc_routing": ["inline", "scheduled"],
//              "workload.queue_depth": [4, 32]}
//   }
//
// expands to 2 x 2 x 2 = 8 arms named "ftl=conventional,gc_routing=inline,
// workload.queue_depth=4" etc.  Arms that do not override `seed` get
// `defaults.seed + arm_index` so replicated arms decorrelate by default.
//
// Workload kinds: "closed_loop" (fixed queue depth, uniform random),
// "tenants" (multi-tenant closed/paced loops; requires a `qos` tenant list),
// "synthetic" ("web" / "media" preset traces replayed open-loop), and
// "trace" (an MSR-format CSV replayed open-loop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/json.h"
#include "ftl/flash_target.h"
#include "host/host_interface.h"
#include "host/load_generator.h"
#include "nand/fault_plan.h"
#include "obs/health.h"
#include "ssd/ssd.h"
#include "util/types.h"

namespace ctflash::campaign {

/// One fully resolved arm: the merged JSON plus the derived device/host
/// configuration objects the runner needs.
struct ArmSpec {
  std::string name;
  std::uint64_t index = 0;        ///< position in expansion order
  Json merged;                    ///< defaults + grid + arm overrides
  ssd::SsdConfig device;
  host::HostConfig host;
  /// Prefill share of the device's logical capacity (the runner resolves
  /// bytes against the constructed device, which knows the true capacity
  /// after over-provisioning adjustments).
  std::uint32_t prefill_pct = 85;
  std::uint64_t prefill_chunk_bytes = 0;
  std::uint64_t seed = 0;

  /// Fault-injection settings, parsed from a top-level "faults" object
  /// (absent or null -> fault-free arm).  The plan/handling are NOT device
  /// configuration: they are armed *after* restore, so all fault arms of a
  /// grid share one aged prefill snapshot.
  bool inject_faults = false;
  nand::FaultPlanConfig fault_plan;
  ftl::FaultHandlingConfig fault_handling;
  /// Fault-draw seed; "faults.seed" pins it, otherwise derived from the
  /// arm seed so replicated arms draw decorrelated fault sequences.
  std::uint64_t fault_seed = 0;

  /// Observability settings, parsed from a top-level "observability"
  /// object ({"phases": true, "metrics_epoch_us": N}).  With phases on,
  /// the runner attaches an aggregate-only obs::Tracer for the measured
  /// workload and the result carries a per-arm phase breakdown.
  bool trace_phases = false;
  Us metrics_epoch_us = 0;
  /// Health evaluation ({"observability": {"health": true}} or
  /// {"health": {<HealthConfig knobs>}}): the runner samples the device's
  /// wear/media/GC counters before and after the measured workload, scores
  /// them through one obs::HealthMonitor window, and reports
  /// metrics["health"] plus health_state / health_score report columns.
  bool eval_health = false;
  obs::HealthConfig health;

  /// Canonical config echo for the result report (deterministic fields
  /// only: name, ftl, gc_routing, device/workload shape, seed).
  Json ConfigSummary() const;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::uint32_t workers = 1;
  /// Share one prefill snapshot per device shape (default).  Disabled,
  /// every arm prefills its own device — the straight-through mode the
  /// campaign bench compares against.
  bool share_prefill = true;
  std::vector<ArmSpec> arms;

  /// Parses and expands a spec; throws std::runtime_error /
  /// std::invalid_argument naming the offending field.
  static CampaignSpec Parse(const std::string& json_text);
  static CampaignSpec Parse(const Json& root);
  /// Disambiguates string literals (Json also converts from const char*).
  static CampaignSpec Parse(const char* json_text) {
    return Parse(std::string(json_text));
  }
};

/// The device/host/prefill subset of an arm configuration, resolved from a
/// merged campaign-style object ("device_bytes", "page_size", "ftl",
/// "gc_routing", "host", "qos", "error_model", "prefill_pct", ...).  The
/// cluster layer (src/cluster/) reuses this to stamp out a whole fleet of
/// devices from one device template, so cluster specs read exactly like
/// campaign specs.
struct DeviceSectionSpec {
  ssd::SsdConfig device;
  host::HostConfig host;
  std::uint32_t prefill_pct = 85;
  std::uint64_t prefill_chunk_bytes = 0;
};

/// Parses and validates the device/host/prefill fields of `merged`; throws
/// std::runtime_error naming the offending field.
DeviceSectionSpec ResolveDeviceSection(const Json& merged);

/// RFC 7386-style merge: object fields of `patch` merge recursively into
/// `base`, everything else replaces.  Null patch fields delete.
Json MergePatch(const Json& base, const Json& patch);

/// Sets `root[path]` where `path` is dot-separated ("workload.queue_depth"),
/// creating intermediate objects.
void SetJsonPath(Json& root, const std::string& path, const Json& value);

/// Renders a grid/override value for arm names ("ppb", "32", "2.5").
std::string JsonValueLabel(const Json& value);

}  // namespace ctflash::campaign
