#include "cluster/shard_router.h"

#include <algorithm>
#include <stdexcept>

namespace ctflash::cluster {

namespace {

/// splitmix64 finalizer: the ring/user hash.  Streams are separated by
/// mixing a salt into the seed before the value.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t HashOf(std::uint64_t seed, std::uint64_t salt,
                     std::uint64_t value) {
  return Mix64(Mix64(seed ^ salt) ^ value);
}

constexpr std::uint64_t kVnodeSalt = 0x76AEull;
constexpr std::uint64_t kShardSalt = 0x5AADull;
constexpr std::uint64_t kUserSalt = 0x05E2ull;

}  // namespace

void RouterConfig::Validate() const {
  if (num_devices == 0) {
    throw std::invalid_argument("router: num_devices must be >= 1");
  }
  if (num_shards == 0) {
    throw std::invalid_argument("router: num_shards must be >= 1");
  }
  if (vnodes == 0) {
    throw std::invalid_argument("router: vnodes must be >= 1");
  }
  if (replicas == 0 || replicas > num_devices) {
    throw std::invalid_argument(
        "router: replicas must be in [1, num_devices]");
  }
}

ShardRouter::ShardRouter(const RouterConfig& config) : config_(config) {
  config_.Validate();
  const std::uint32_t total = config_.TotalDevices();
  alive_.assign(total, true);
  in_ring_.assign(total, false);
  ring_.reserve(static_cast<std::size_t>(config_.num_devices) * config_.vnodes);
  for (DeviceId d = 0; d < config_.num_devices; ++d) {
    in_ring_[d] = true;
    for (std::uint32_t v = 0; v < config_.vnodes; ++v) {
      ring_.emplace_back(
          HashOf(config_.seed, kVnodeSalt,
                 (static_cast<std::uint64_t>(d) << 32) | v),
          d);
    }
  }
  std::sort(ring_.begin(), ring_.end());
  shard_hash_.resize(config_.num_shards);
  placements_.resize(config_.num_shards);
  for (ShardId s = 0; s < config_.num_shards; ++s) {
    shard_hash_[s] = HashOf(config_.seed, kShardSalt, s);
    placements_[s] = PlaceShard(s);
  }
}

ShardId ShardRouter::ShardOfUser(std::uint64_t user) const {
  return static_cast<ShardId>(HashOf(config_.seed, kUserSalt, user) %
                              config_.num_shards);
}

std::uint32_t ShardRouter::RingDevices() const {
  std::uint32_t n = 0;
  for (DeviceId d = 0; d < in_ring_.size(); ++d) {
    if (in_ring_[d] && alive_[d]) ++n;
  }
  return n;
}

std::uint32_t ShardRouter::SparesLeft() const {
  return config_.spare_devices - next_spare_;
}

std::uint64_t ShardRouter::PrimaryShardsOn(DeviceId device) const {
  std::uint64_t n = 0;
  for (const std::vector<DeviceId>& p : placements_) {
    if (p[0] == device) ++n;
  }
  return n;
}

std::uint64_t ShardRouter::PlacementSlotsOn(DeviceId device) const {
  std::uint64_t n = 0;
  for (const std::vector<DeviceId>& p : placements_) {
    n += static_cast<std::uint64_t>(
        std::count(p.begin(), p.end(), device));
  }
  return n;
}

std::vector<DeviceId> ShardRouter::PlaceShard(ShardId shard) const {
  std::vector<DeviceId> placement;
  placement.reserve(config_.replicas);
  // First ring point at or after the shard's hash, wrapping.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(shard_hash_[shard], DeviceId{0}));
  for (std::size_t step = 0;
       step < ring_.size() && placement.size() < config_.replicas; ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const DeviceId d = it->second;
    if (alive_[d] &&
        std::find(placement.begin(), placement.end(), d) == placement.end()) {
      placement.push_back(d);
    }
    ++it;
  }
  if (placement.empty()) {
    throw std::runtime_error("router: no alive device left to place shards");
  }
  return placement;
}

DeviceId ShardRouter::NextAliveOnRing(
    std::uint64_t from_hash, const std::vector<DeviceId>& exclude) const {
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(from_hash, DeviceId{0}));
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const DeviceId d = it->second;
    if (alive_[d] &&
        std::find(exclude.begin(), exclude.end(), d) == exclude.end()) {
      return d;
    }
    ++it;
  }
  return kNoDevice;
}

std::vector<ShardMove> ShardRouter::MarkFailed(DeviceId device) {
  if (device >= alive_.size()) {
    throw std::invalid_argument("router: MarkFailed device out of range");
  }
  if (!alive_[device]) return {};
  alive_[device] = false;

  // A spare adopts the failed device's ring points wholesale: the ring
  // geometry is unchanged, so exactly the failed device's slots move.
  DeviceId adopter = kNoDevice;
  if (in_ring_[device] && next_spare_ < config_.spare_devices) {
    adopter = config_.num_devices + next_spare_;
    ++next_spare_;
    in_ring_[adopter] = true;
    for (auto& [hash, d] : ring_) {
      if (d == device) d = adopter;
    }
  } else if (in_ring_[device]) {
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [device](const auto& point) {
                                 return point.second == device;
                               }),
                ring_.end());
    if (ring_.empty()) {
      throw std::runtime_error("router: last ring device failed");
    }
  }
  in_ring_[device] = false;

  std::vector<ShardMove> moves;
  for (ShardId s = 0; s < config_.num_shards; ++s) {
    std::vector<DeviceId>& placement = placements_[s];
    for (std::uint32_t slot = 0; slot < placement.size(); ++slot) {
      if (placement[slot] != device) continue;
      ShardMove move;
      move.shard = s;
      move.slot = slot;
      move.from = device;
      // Rebuild source: the first surviving member of the old placement.
      for (const DeviceId member : placement) {
        if (member != device && alive_[member]) {
          move.source = member;
          break;
        }
      }
      const DeviceId replacement =
          adopter != kNoDevice ? adopter
                               : NextAliveOnRing(shard_hash_[s], placement);
      if (replacement == kNoDevice) {
        throw std::runtime_error(
            "router: no alive replacement device for shard " +
            std::to_string(s));
      }
      placement[slot] = replacement;
      move.to = replacement;
      moves.push_back(move);
    }
  }
  return moves;
}

}  // namespace ctflash::cluster
