#include "qos/tenant.h"

#include <stdexcept>

namespace ctflash::qos {

void QosConfig::Validate(std::uint32_t num_queues) const {
  if (tenants.empty()) return;  // QoS disabled
  std::vector<bool> owned(num_queues, false);
  double min_share_sum = 0.0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantConfig& tenant = tenants[t];
    const std::string who =
        "QosConfig tenant " + std::to_string(t) +
        (tenant.name.empty() ? "" : " (" + tenant.name + ")");
    if (tenant.weight == 0) {
      throw std::invalid_argument(who + ": weight must be > 0");
    }
    if (tenant.queues.empty()) {
      throw std::invalid_argument(who + ": must own at least one queue");
    }
    for (const std::uint32_t qid : tenant.queues) {
      if (qid >= num_queues) {
        throw std::invalid_argument(who + ": queue " + std::to_string(qid) +
                                    " out of range");
      }
      if (owned[qid]) {
        throw std::invalid_argument(who + ": queue " + std::to_string(qid) +
                                    " assigned twice");
      }
      owned[qid] = true;
    }
    if (tenant.iops_limit < 0.0 || tenant.bytes_per_sec_limit < 0.0 ||
        tenant.iops_burst < 0.0 || tenant.bytes_burst < 0.0) {
      throw std::invalid_argument(who + ": limits and bursts must be >= 0");
    }
    if (tenant.min_share < 0.0 || tenant.min_share >= 1.0) {
      throw std::invalid_argument(who + ": min_share must be in [0, 1)");
    }
    min_share_sum += tenant.min_share;
  }
  if (min_share_sum > 1.0) {
    throw std::invalid_argument(
        "QosConfig: min_share reservations exceed the device (sum > 1)");
  }
  for (std::uint32_t qid = 0; qid < num_queues; ++qid) {
    if (!owned[qid]) {
      throw std::invalid_argument("QosConfig: queue " + std::to_string(qid) +
                                  " belongs to no tenant");
    }
  }
}

}  // namespace ctflash::qos
