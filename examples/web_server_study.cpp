// Web/SQL-server study: a deep dive into what the PPB strategy does on the
// paper's strongest workload.  Prints the four-level classification flows
// (promotions, demotions, diverts), where reads physically land per hotness
// level, and a sweep of the iron-hot list capacity — the knob that controls
// how much read-hot data can camp on fast pages.
//
//   ./web_server_study [device_bytes] [requests]
#include <cstdint>
#include <iostream>
#include <string>

#include "ssd/experiment.h"
#include "trace/synthetic.h"
#include "util/config.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace ctflash;

  std::uint64_t device_bytes = 2 * kGiB;
  std::uint64_t requests = 500'000;
  if (argc > 1) device_bytes = util::ParseByteSize(argv[1]);
  if (argc > 2) requests = std::stoull(argv[2]);

  const auto base =
      ssd::ScaledConfig(ssd::FtlKind::kPpb, device_bytes, 16 * 1024, 2.0);
  std::cout << "Device: " << base.geometry.ToString() << "\n\n";

  // --- Run once with defaults and dissect the strategy ---------------------
  ssd::Ssd ssd(base);
  const std::uint64_t footprint = ssd.LogicalBytes() / 10 * 8;
  const auto wl = trace::WebServerWorkload(footprint, requests);
  const auto records = trace::SyntheticTraceGenerator(wl).Generate();
  ssd::ExperimentRunner runner(ssd);
  runner.Prefill(footprint);
  const auto res = runner.Replay(records, wl.name);
  const auto& ps = ssd.ppb()->ppb_stats();

  std::cout << res.read_latency.Summary("reads") << "\n";
  std::cout << res.write_latency.Summary("writes") << "\n\n";

  util::TablePrinter flows({"classification flow", "count"});
  flows.AddRow({"writes routed to hot area", std::to_string(ps.hot_area_writes)});
  flows.AddRow({"writes routed to cold area", std::to_string(ps.cold_area_writes)});
  flows.AddRow({"hot -> iron-hot promotions (on read)",
                std::to_string(ps.iron_promotions)});
  flows.AddRow({"demotions to cold area", std::to_string(ps.cold_demotions)});
  flows.AddRow({"diverted placements (Alg. 1 rules I/II)",
                std::to_string(ps.diverted_writes)});
  flows.AddRow({"GC relocations changing speed class",
                std::to_string(ps.gc_migrations)});
  flows.Print();

  std::cout << "\nWhere do reads land? (speed factor 1.0 = slowest top layer, "
            << 1.0 / base.timing.speed_ratio << " = fastest bottom layer)\n";
  util::TablePrinter lands({"hotness level at read time", "page reads",
                            "mean speed factor"});
  const char* names[4] = {"iron-hot", "hot", "cold", "icy-cold"};
  for (int i = 0; i < 4; ++i) {
    const auto level = static_cast<core::HotnessLevel>(i);
    lands.AddRow({names[i], std::to_string(ps.reads_at_level[i]),
                  util::TablePrinter::FormatDouble(ps.MeanReadFactor(level))});
  }
  lands.Print();

  // --- Iron-hot list capacity sweep ----------------------------------------
  std::cout << "\nIron-hot LRU capacity sweep (fraction of logical pages):\n";
  util::TablePrinter sweep({"iron capacity", "read mean (us)", "fast reads",
                            "slow reads"});
  for (const double frac : {0.005, 0.02, 0.04, 0.08}) {
    auto cfg = base;
    cfg.ppb.iron_lru_capacity = static_cast<std::uint64_t>(
        static_cast<double>(ssd.LogicalBytes() / cfg.geometry.page_size_bytes) *
        frac);
    ssd::Ssd s(cfg);
    ssd::ExperimentRunner r(s);
    r.Prefill(footprint);
    const auto out = r.Replay(records, wl.name);
    const auto& st = s.ppb()->ppb_stats();
    sweep.AddRow({util::TablePrinter::FormatPercent(frac, 1),
                  util::TablePrinter::FormatDouble(out.read_latency.mean_us()),
                  std::to_string(st.fast_reads), std::to_string(st.slow_reads)});
  }
  sweep.Print();
  return 0;
}
