// Campaign runner bench: snapshot-shared prefill + multi-worker sharding.
//
// Builds a 16-arm grid (2 FTLs x 2 GC routings x 2 queue depths x 2 read
// mixes) over one small device shape and SELF-ASSERTS the campaign
// subsystem's two core claims:
//
//   1. Correctness — snapshot-restored arms are bit-identical to
//      straight-through arms (each prefilling its own device), and the
//      deterministic campaign report is byte-identical for any worker
//      count.
//   2. Performance — sharding arms over min(4, hw_concurrency) workers
//      yields >= 0.7x linear speedup over 1 worker (skipped when the
//      machine exposes a single core: the bound degenerates to 1.0x).
//
// Options:
//   --workers <n>   worker count for the parallel run (default
//                   min(4, hw_concurrency))
//   --device <sz>   device bytes per arm            (default 96 MiB)
//   --requests <n>  closed-loop requests per arm    (default 4000)
//   --quick         1/4-length arms for smoke runs
//   --json <path>   result file (default BENCH_campaign.json)
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.h"
#include "campaign/runner.h"
#include "campaign/spec.h"
#include "util/config.h"

namespace {

using ctflash::campaign::ArmResult;
using ctflash::campaign::CampaignResult;
using ctflash::campaign::CampaignRunner;
using ctflash::campaign::CampaignSpec;
using ctflash::campaign::Json;

struct Options {
  std::uint32_t workers = 0;  // 0 = min(4, hw_concurrency)
  std::uint64_t device_bytes = 96ull << 20;
  std::uint64_t requests = 4'000;
  std::string json_path = "BENCH_campaign.json";
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      o.workers = static_cast<std::uint32_t>(std::stoul(next()));
      if (o.workers == 0) throw std::invalid_argument("--workers must be >= 1");
    } else if (arg == "--device") {
      o.device_bytes = ctflash::util::ParseByteSize(next());
    } else if (arg == "--requests") {
      o.requests = std::stoull(next());
    } else if (arg == "--quick") {
      o.requests /= 4;
    } else if (arg == "--json") {
      o.json_path = next();
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

std::string SpecText(const Options& o) {
  Json spec;
  spec["campaign"] = "bench-campaign-grid";
  spec["workers"] = std::uint64_t{1};
  Json defaults;
  defaults["device_bytes"] = o.device_bytes;
  defaults["prefill_pct"] = std::uint64_t{80};
  defaults["seed"] = std::uint64_t{7};
  Json workload;
  workload["kind"] = "closed_loop";
  workload["requests"] = o.requests;
  workload["queue_depth"] = std::uint64_t{8};
  workload["read_fraction"] = 0.5;
  defaults["workload"] = workload;
  spec["defaults"] = defaults;
  Json grid;
  grid["ftl"] = Json(ctflash::campaign::JsonArray{Json("conventional"),
                                                  Json("ppb")});
  grid["gc_routing"] = Json(ctflash::campaign::JsonArray{Json("inline"),
                                                         Json("scheduled")});
  grid["workload.queue_depth"] =
      Json(ctflash::campaign::JsonArray{Json(std::uint64_t{4}),
                                        Json(std::uint64_t{16})});
  grid["workload.read_fraction"] =
      Json(ctflash::campaign::JsonArray{Json(0.5), Json(0.9)});
  spec["grid"] = grid;
  return spec.Dump(2);
}

int Fail(const std::string& what) {
  std::cerr << "SELF-ASSERT FAILED: " << what << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t parallel_workers =
      options.workers != 0 ? options.workers : std::min(4u, hw);

  std::cout << "=== Campaign runner: snapshot sharing + arm sharding ===\n";
  const CampaignSpec spec = CampaignSpec::Parse(SpecText(options));
  std::cout << "Grid: " << spec.arms.size() << " arms, device "
            << (options.device_bytes >> 20) << " MiB, " << options.requests
            << " requests/arm; workers 1 vs " << parallel_workers
            << " (hw_concurrency " << hw << ")\n\n";
  if (spec.arms.size() < 16) {
    return Fail("grid expanded to fewer than 16 arms");
  }

  CampaignRunner runner(spec);

  // Serial and parallel runs of the same spec.
  CampaignResult serial = runner.Run(/*workers=*/1);
  CampaignResult parallel = runner.Run(parallel_workers);

  for (const ArmResult& arm : serial.arms) {
    if (!arm.ok) return Fail("arm \"" + arm.name + "\" failed: " + arm.error);
  }

  // Assert 1a: worker count must not change a single result byte.
  const std::string serial_bytes = serial.DeterministicJson().Dump(2);
  const std::string parallel_bytes = parallel.DeterministicJson().Dump(2);
  const bool workers_identical = serial_bytes == parallel_bytes;
  std::cout << "deterministic report, 1 vs " << parallel_workers
            << " workers: " << (workers_identical ? "IDENTICAL" : "DIFFER")
            << " (" << serial_bytes.size() << " bytes)\n";
  if (!workers_identical) {
    return Fail("worker count changed the deterministic report");
  }

  // Assert 1b: snapshot-restored arms == straight-through arms.  Spot-check
  // the four corners of the ftl x gc_routing sub-grid (arm 0 of each
  // 4-arm block in expansion order: ftl varies slowest, gc_routing next).
  const std::size_t block = spec.arms.size() / 4;
  std::size_t checked = 0;
  for (std::size_t corner = 0; corner < 4; ++corner) {
    const std::size_t i = corner * block;
    const ArmResult straight =
        ctflash::campaign::RunCampaignArm(spec.arms[i], /*shared=*/nullptr);
    if (!straight.ok) {
      return Fail("straight-through arm \"" + straight.name +
                  "\" failed: " + straight.error);
    }
    const std::string a = serial.arms[i].metrics.Dump(2);
    const std::string b = straight.metrics.Dump(2);
    std::cout << "arm " << i << " (" << spec.arms[i].name
              << "): snapshot-restored vs straight-through "
              << (a == b ? "IDENTICAL" : "DIFFER") << "\n";
    if (a != b) {
      return Fail("snapshot-restored metrics differ from straight-through "
                  "for arm \"" + spec.arms[i].name + "\"");
    }
    ++checked;
  }

  // Assert 2: near-linear speedup when real cores back the extra workers.
  const std::uint32_t effective = std::min(parallel_workers, hw);
  const double speedup = parallel.total_wall_ms > 0.0
                             ? serial.total_wall_ms / parallel.total_wall_ms
                             : 1.0;
  const double required = 0.7 * static_cast<double>(effective);
  std::cout << "\nwall clock: 1 worker " << serial.total_wall_ms << " ms, "
            << parallel_workers << " workers " << parallel.total_wall_ms
            << " ms -> speedup " << speedup << "x (required >= " << required
            << "x; " << effective << " effective cores)\n";
  if (effective > 1 && speedup < required) {
    return Fail("speedup below 0.7x linear");
  }
  std::cout << "prefill: " << parallel.prefill_groups << " shared prefills fed "
            << parallel.prefill_restores << " arms ("
            << parallel.prefill_wall_ms << " ms of "
            << parallel.total_wall_ms << " ms total)\n";

  Json report = parallel.Report();
  Json checks;
  checks["grid_arms"] = static_cast<std::uint64_t>(spec.arms.size());
  checks["workers_identical"] = workers_identical;
  checks["straight_through_checked"] = static_cast<std::uint64_t>(checked);
  checks["straight_through_identical"] = true;
  checks["serial_wall_ms"] = serial.total_wall_ms;
  checks["parallel_wall_ms"] = parallel.total_wall_ms;
  checks["parallel_workers"] = static_cast<std::uint64_t>(parallel_workers);
  checks["effective_cores"] = static_cast<std::uint64_t>(effective);
  checks["speedup"] = speedup;
  checks["speedup_required"] = effective > 1 ? required : 1.0;
  report["self_check"] = checks;
  std::ofstream out(options.json_path);
  out << report.Dump(2) << "\n";
  std::cout << "\nall self-asserts passed; wrote " << options.json_path
            << "\n";
  return 0;
}
