#include "host/io_scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ftl/ftl_base.h"

namespace ctflash::host {

namespace {

/// Adapter presenting the legacy OnDispatch(std::function) hook as a
/// SchedulerObserver, so the scheduler maintains exactly one dispatch
/// notification pathway.
class CallbackObserver final : public sched::SchedulerObserver {
 public:
  explicit CallbackObserver(IoScheduler::DispatchCallback cb)
      : cb_(std::move(cb)) {}

  void OnDispatch(const sched::FlashTransaction& txn,
                  const sched::DispatchContext&) override {
    cb_(txn);
  }
  void OnTxnExecuted(const sched::FlashTransaction&, Us, Us) override {}

 private:
  IoScheduler::DispatchCallback cb_;
};

}  // namespace

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kOutOfOrder:
      return "out-of-order";
  }
  return "?";
}

IoScheduler::IoScheduler(ssd::Ssd& ssd, sim::EventQueue& queue,
                         SchedPolicy policy, std::uint32_t device_slots,
                         std::uint32_t gc_aging_limit,
                         std::uint32_t write_aging_limit,
                         qos::TenantTable* tenants)
    : ssd_(ssd),
      queue_(queue),
      policy_(policy),
      device_slots_(device_slots),
      gc_aging_limit_(gc_aging_limit),
      write_aging_limit_(write_aging_limit),
      tenants_(tenants) {
  if (device_slots == 0) {
    throw std::invalid_argument("IoScheduler: device_slots must be > 0");
  }
  if (gc_aging_limit == 0) {
    throw std::invalid_argument("IoScheduler: gc_aging_limit must be > 0");
  }
  if (tenants_ != nullptr) arb_active_.resize(tenants_->TenantCount());
  if (ssd_.ftl().config().gc_routing == ftl::GcRouting::kScheduled) {
    ssd_.ftl().AttachGcScheduler();
    attached_gc_ = true;
  }
}

IoScheduler::~IoScheduler() {
  if (attached_gc_) ssd_.ftl().DetachGcScheduler();
}

void IoScheduler::OnDispatch(DispatchCallback cb) {
  if (dispatch_adapter_ != nullptr) {
    DetachObserver(dispatch_adapter_.get());
    dispatch_adapter_.reset();
  }
  if (cb) {
    dispatch_adapter_ = std::make_unique<CallbackObserver>(std::move(cb));
    AttachObserver(dispatch_adapter_.get());
  }
}

void IoScheduler::AttachObserver(sched::SchedulerObserver* observer) {
  if (observer != nullptr) observers_.push_back(observer);
}

void IoScheduler::DetachObserver(sched::SchedulerObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

void IoScheduler::Enqueue(FlashTransaction txn) {
  txn.seq = next_seq_++;
  ready_.push_back(ReadyTxn{txn, 0, queue_.Now(), false});
  Pump();
}

void IoScheduler::PullGcWork() {
  auto& ftl = ssd_.ftl();
  if (!ftl.ScheduledGcActive()) return;
  gc_intake_.clear();
  ftl.DrainGcTransactions(gc_intake_);
  for (auto& txn : gc_intake_) {
    txn.seq = next_seq_++;
    if (txn.source == sched::TxnSource::kGcCopy) {
      gc_copies_undispatched_[txn.gc_block]++;
    }
    ready_.push_back(ReadyTxn{txn, 0, queue_.Now(), false});
    ++gc_ready_;
  }
}

bool IoScheduler::Eligible(const ReadyTxn& rt, bool write_pressure) const {
  switch (rt.txn.source) {
    case sched::TxnSource::kHostWrite:
      // Admission guard: while GC work is ready and the pool sits at the
      // write floor, writes wait so GC can replenish first.
      return !(write_pressure && gc_ready_ > 0);
    case sched::TxnSource::kGcErase: {
      // The victim must be fully relocated before it is erased.
      const auto it = gc_copies_undispatched_.find(rt.txn.gc_block);
      return it == gc_copies_undispatched_.end() || it->second == 0;
    }
    default:
      return true;
  }
}

int IoScheduler::RankOf(const ReadyTxn& rt, bool urgent) const {
  // Ranks derive from the sched::PriorityOf class ordering (host-read >
  // host-write > gc-copy > gc-erase), with one slot between reads and
  // writes reserved for GC that is urgent (pool at the GC trigger) or
  // aged out — boosted GC overtakes host writes, never host reads.
  constexpr int kBoostedGcRank = 1;
  if (sched::IsGc(rt.txn.source) &&
      (urgent || rt.age >= gc_aging_limit_)) {
    return kBoostedGcRank;
  }
  // Write aging closes the read-flood starvation gap: an aged host write
  // joins the read rank (and competes there on die keys), so sustained
  // reads can defer a write by at most `write_aging_limit` dispatches.
  if (rt.txn.source == sched::TxnSource::kHostWrite &&
      write_aging_limit_ > 0 && rt.age >= write_aging_limit_) {
    return 0;
  }
  const int priority = sched::PriorityOf(rt.txn.source);
  return priority == 0 ? 0 : priority + 1;
}

IoScheduler::DispatchKey IoScheduler::KeyOf(const FlashTransaction& txn,
                                            Us write_free_at) const {
  const auto& geo = ssd_.target().geometry();
  switch (txn.source) {
    case sched::TxnSource::kHostWrite:
      // A write's die is decided by the FTL's write-frontier allocator at
      // dispatch time; the allocator's earliest frontier die (probed once
      // per PickNext — it is transaction-independent) is the best
      // prediction of when the program could start.
      return {write_free_at, 0};
    case sched::TxnSource::kHostRead: {
      const Ppn ppn = ssd_.ftl().ProbePpn(txn.lpn);
      if (ppn == kInvalidPpn) {
        // No flash work at all: startable now, but on no die — the neutral
        // plane loses every tie so it cannot leapfrog real work that is
        // also startable (it has no die to win for anyone).
        return {0, kNeutralPlane};
      }
      const BlockId block = geo.BlockOf(ppn);
      return {ssd_.target().DieFreeAt(block), geo.PlaneOfBlock(block)};
    }
    case sched::TxnSource::kGcCopy: {
      // Conflict key of the relocation read: the source page's die (the
      // destination die is the GC frontier's business at execution time).
      const BlockId block = geo.BlockOf(txn.gc_src);
      return {ssd_.target().DieFreeAt(block), geo.PlaneOfBlock(block)};
    }
    case sched::TxnSource::kGcErase:
      return {ssd_.target().DieFreeAt(txn.gc_block),
              geo.PlaneOfBlock(txn.gc_block)};
  }
  return {0, 0};
}

sched::DispatchContext IoScheduler::ContextOf(const ReadyTxn& rt) const {
  sched::DispatchContext ctx;
  ctx.dispatch_us = queue_.Now();
  ctx.enqueue_us = rt.enqueue_us;
  ctx.write_held = rt.held;
  const auto& geo = ssd_.target().geometry();
  switch (rt.txn.source) {
    case sched::TxnSource::kHostRead: {
      const Ppn ppn = ssd_.ftl().ProbePpn(rt.txn.lpn);
      if (ppn != kInvalidPpn) {
        const BlockId block = geo.BlockOf(ppn);
        ctx.die = geo.DieOfBlock(block);
        ctx.die_free_at = ssd_.target().DieFreeAt(block);
      }
      break;
    }
    case sched::TxnSource::kHostWrite:
      // The write's die is the allocator's business at execution time; the
      // frontier probe still bounds when the program can start.
      ctx.die_free_at =
          ssd_.ftl().ProbeWriteFreeAt().value_or(ctx.dispatch_us);
      break;
    case sched::TxnSource::kGcCopy: {
      const BlockId block = geo.BlockOf(rt.txn.gc_src);
      ctx.die = geo.DieOfBlock(block);
      ctx.die_free_at = ssd_.target().DieFreeAt(block);
      break;
    }
    case sched::TxnSource::kGcErase:
      ctx.die = geo.DieOfBlock(rt.txn.gc_block);
      ctx.die_free_at = ssd_.target().DieFreeAt(rt.txn.gc_block);
      break;
  }
  return ctx;
}

std::size_t IoScheduler::PickNext(bool urgent, bool write_pressure) const {
  if (policy_ == SchedPolicy::kFifo) {
    // Strict intake order among eligible transactions: ready_ stays in seq
    // order (push_back + order-preserving erase).
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (Eligible(ready_[i], write_pressure)) return i;
    }
    return kNoPick;
  }
  // Out-of-order: lowest priority rank wins; within a rank the earliest
  // predicted die availability, then the plane stripe, then intake order
  // (equal keys keep the earlier index, which is the lower seq).
  const Us now = queue_.Now();
  const Us write_free_at = ssd_.ftl().ProbeWriteFreeAt().value_or(0);

  // Multi-tenant arbitration inserts one step between the rank and the die
  // key: find the winning rank, let the tenant table pick the tenant to
  // serve (weighted DRR + min-share floor), then key-order only within that
  // tenant's candidates.  Without tenants the single-pass pick below is the
  // seed path, byte-for-byte.
  qos::TenantId serve = qos::kNoTenant;
  if (tenants_ != nullptr) {
    // Single pass: track the winning rank, restarting the per-tenant
    // active set whenever a strictly lower rank appears.
    int winning_rank = -1;
    bool any_tenant = false;
    for (std::size_t i = 0; i < ready_.size(); ++i) {
      if (!Eligible(ready_[i], write_pressure)) continue;
      const int rank = RankOf(ready_[i], urgent);
      if (winning_rank < 0 || rank < winning_rank) {
        winning_rank = rank;
        arb_active_.assign(arb_active_.size(), false);
        any_tenant = false;
      }
      if (rank != winning_rank) continue;
      const std::uint32_t tenant = ready_[i].txn.tenant;
      if (tenant == qos::kNoTenant) continue;
      arb_active_[tenant] = true;
      any_tenant = true;
    }
    if (winning_rank < 0) return kNoPick;
    // Host ranks only (0 = reads + aged writes, 2 = writes); GC carries no
    // tenant.  Arbitrate when the rank's candidates name any tenant.
    if (any_tenant && (winning_rank == 0 || winning_rank == 2)) {
      serve = tenants_->PickTenant(
          winning_rank == 0 ? qos::ArbClass::kRead : qos::ArbClass::kWrite,
          arb_active_);
    }
  }

  std::size_t best = kNoPick;
  int best_rank = 0;
  DispatchKey best_key{};
  for (std::size_t i = 0; i < ready_.size(); ++i) {
    if (!Eligible(ready_[i], write_pressure)) continue;
    if (serve != qos::kNoTenant && ready_[i].txn.tenant != serve) continue;
    const int rank = RankOf(ready_[i], urgent);
    // A strictly worse rank can never win, whatever its key — skip the key
    // computation (KeyOf probes the mapping table per candidate, the hot
    // cost of this scan at deep ready queues).
    if (best != kNoPick && rank > best_rank) continue;
    DispatchKey key = KeyOf(ready_[i].txn, write_free_at);
    if (key.start < now) key.start = now;
    if (best == kNoPick || rank < best_rank ||
        (rank == best_rank &&
         (key.start < best_key.start ||
          (key.start == best_key.start && key.plane < best_key.plane)))) {
      best = i;
      best_rank = rank;
      best_key = key;
    }
  }
  return best;
}

void IoScheduler::Dispatch(std::size_t idx) {
  const ReadyTxn rt = ready_[idx];
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(idx));
  const FlashTransaction& txn = rt.txn;
  ++in_flight_;
  if (in_flight_ > peak_in_flight_) peak_in_flight_ = in_flight_;
  ++dispatched_;
  if (sched::IsGc(txn.source)) {
    --gc_ready_;
    ++gc_dispatched_;
    if (txn.source == sched::TxnSource::kGcCopy) {
      const auto it = gc_copies_undispatched_.find(txn.gc_block);
      if (--it->second == 0) gc_copies_undispatched_.erase(it);
    }
  } else {
    if (gc_ready_ > 0) {
      // A host dispatch overtook waiting GC work: advance its age toward
      // the boost so deferral stays bounded.
      for (auto& waiting : ready_) {
        if (sched::IsGc(waiting.txn.source)) ++waiting.age;
      }
      if (txn.source == sched::TxnSource::kHostRead) ++read_preemptions_;
    }
    if (write_aging_limit_ > 0) {
      // Same bound for host writes overtaken by host reads.
      if (txn.source == sched::TxnSource::kHostRead) {
        for (auto& waiting : ready_) {
          if (waiting.txn.source == sched::TxnSource::kHostWrite) {
            ++waiting.age;
          }
        }
      } else if (txn.source == sched::TxnSource::kHostWrite &&
                 rt.age >= write_aging_limit_) {
        ++aged_write_dispatches_;
      }
    }
    if (tenants_ != nullptr && txn.tenant != qos::kNoTenant) {
      tenants_->NoteDispatch(txn.tenant,
                             txn.source == sched::TxnSource::kHostRead
                                 ? qos::ArbClass::kRead
                                 : qos::ArbClass::kWrite);
    }
  }
  if (!observers_.empty()) {
    // ContextOf re-resolves the die availability the pick just keyed on;
    // only observers pay for it.
    const sched::DispatchContext ctx = ContextOf(rt);
    for (auto* o : observers_) o->OnDispatch(txn, ctx);
  }
  // SubmitRead/SubmitWrite/SubmitGc service the transaction on the
  // resource timelines immediately and fire `done` as a completion event,
  // so Pump never re-enters itself.  RequestResult::arrival_us is the
  // dispatch time (the Ssd services at queue_.Now()).
  switch (txn.source) {
    case sched::TxnSource::kHostRead:
      ssd_.SubmitRead(txn.offset_bytes, txn.size_bytes, queue_,
                      [this, txn](const ftl::RequestResult& r) {
                        --in_flight_;
                        for (auto* o : observers_) {
                          o->OnTxnExecuted(txn, r.arrival_us, r.completion_us);
                        }
                        if (on_complete_) on_complete_(txn, r);
                        Pump();
                      });
      break;
    case sched::TxnSource::kHostWrite:
      ssd_.SubmitWrite(txn.offset_bytes, txn.size_bytes, queue_,
                       [this, txn](const ftl::RequestResult& r) {
                         --in_flight_;
                         for (auto* o : observers_) {
                           o->OnTxnExecuted(txn, r.arrival_us,
                                            r.completion_us);
                         }
                         if (on_complete_) on_complete_(txn, r);
                         Pump();
                       });
      break;
    case sched::TxnSource::kGcCopy:
    case sched::TxnSource::kGcErase:
      ssd_.SubmitGc(txn, queue_, [this, txn](const ftl::RequestResult& r) {
        --in_flight_;
        ++gc_completed_;
        for (auto* o : observers_) {
          o->OnTxnExecuted(txn, r.arrival_us, r.completion_us);
        }
        Pump();
      });
      break;
  }
}

void IoScheduler::Pump() {
  while (in_flight_ < device_slots_) {
    // Pull freshly planned GC work first: the pool state may have changed
    // with the previous dispatch (writes consume blocks, erases free them).
    PullGcWork();
    if (ready_.empty()) break;
    const auto& ftl = ssd_.ftl();
    const bool scheduled = ftl.ScheduledGcActive();
    const bool urgent = scheduled && ftl.GcUrgent();
    const bool write_pressure = scheduled && ftl.GcWritePressure();
    if (write_pressure && gc_ready_ > 0) {
      bool counted = false;
      for (auto& rt : ready_) {
        if (rt.txn.source == sched::TxnSource::kHostWrite) {
          if (!counted) {
            ++write_hold_picks_;
            counted = true;
          }
          // Mark every held write so the tracer can attribute its queueing
          // delay to the admission guard; without observers the first hit
          // still short-circuits as before.
          if (observers_.empty()) break;
          rt.held = true;
        }
      }
    }
    const std::size_t idx = PickNext(urgent, write_pressure);
    if (idx == kNoPick) break;  // everything ready is held/gated
    Dispatch(idx);
  }
}

}  // namespace ctflash::host
