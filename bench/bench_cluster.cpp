// Storage-cluster scenario bench: a shard router over a simulated device
// fleet, with failure-driven rebalancing.  Three arms over the same fleet
// shape, all fed by the same Zipf-skewed million-user population:
//
//   healthy    no faults — reports cluster p50/p99 vs the per-device p99
//              spread under skew and checks placement keeps load bounded;
//   rebalance  one device dies mid-run, the director detects it, a spare
//              adopts its shards, and rebuild traffic re-replicates them
//              through the low-weight rebuild tenant;
//   control    same failure, policy "none" — the router keeps routing to
//              the corpse and every such request burns the SLA timeout.
//   wear       one device on a progressive wear ramp (verify-fail
//              probabilities eat its spare pool), twice: policy
//              "on_failure" waits for the death, policy "on_observed"
//              watches the health telemetry and drains the device while it
//              is still serving.
//
// SELF-ASSERTS the cluster subsystem's core claims:
//
//   1. Determinism — the deterministic report is byte-identical across
//      worker counts (epoch-lockstep contract).
//   2. Balance — under Zipf skew, no ring device serves more than
//      --imbalance x the fair share of completed requests.
//   3. Healthy service — the fault-free arm completes every arrival with
//      zero timeouts.
//   4. Bounded failover — with rebalancing, cluster read p99 over the
//      epochs after detection stays within --p99-factor (default 3x) of
//      the pre-failure epoch's p99, and the rebuild is not vacuous
//      (spare adopted, shards moved, rebuild tenant dispatched real I/O).
//   5. Control blowout — without rebalancing the final epoch's read p99
//      exceeds the same bound (the timeouts dominate the tail).
//   6. Predictive drain — under the wear ramp, on_observed drains the sick
//      device (health-failing) STRICTLY BEFORE the epoch where the same
//      ramp kills it under on_failure, and the drained device is never
//      fatal; the on_observed report is byte-identical across worker
//      counts; its health/SLO sections are populated.
//   7. Observation pays — post-incident cluster read p99 under on_observed
//      is <= the death-driven on_failure arm's (draining beats waiting).
//

// Options:
//   --devices <n>     ring devices                  (default 8)
//   --device <sz>     device bytes                  (default 64 MiB)
//   --rate <iops>     cluster arrival rate          (default 40000)
//   --epochs <n>      epochs per arm                (default 8)
//   --epoch-us <us>   epoch length                  (default 250000)
//   --users <n>       user population               (default 1000000)
//   --theta <t>       Zipf skew                     (default 0.9)
//   --workers <n>     worker count                  (default min(8, hw))
//   --p99-factor <x>  failover tail bound           (default 3.0)
//   --imbalance <x>   per-device load bound         (default 2.5)
//   --quick           4 devices, 32 MiB, 6 x 100 ms epochs, 100k users
//   --json <path>     result file (default BENCH_cluster.json)
//   --trace-out <p>   Perfetto trace of the on_observed fleet (phase +
//                     health-score counter tracks per device)
//   --metrics-out <p> MetricsRegistry JSON for the on_observed arm
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/json.h"
#include "cluster/cluster_sim.h"
#include "cluster/spec.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/config.h"

namespace {

using ctflash::campaign::Json;
using ctflash::campaign::JsonArray;
using ctflash::cluster::ClusterResult;
using ctflash::cluster::ClusterSim;
using ctflash::cluster::ClusterSpec;
using ctflash::cluster::DeviceSummary;
using ctflash::cluster::EpochSummary;

struct Options {
  std::uint64_t devices = 8;
  std::uint64_t device_bytes = 64ull << 20;
  double rate_iops = 40'000.0;
  std::uint64_t epochs = 8;
  std::uint64_t epoch_us = 250'000;
  std::uint64_t users = 1'000'000;
  double theta = 0.9;
  std::uint32_t workers = 0;  // 0 = min(8, hw_concurrency)
  double p99_factor = 3.0;
  double imbalance = 2.5;
  std::string json_path = "BENCH_cluster.json";
  std::string trace_out_path;
  std::string metrics_out_path;
};

Options ParseArgs(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value after " + arg);
      }
      return argv[++i];
    };
    if (arg == "--devices") {
      o.devices = std::stoull(next());
      if (o.devices < 3) throw std::invalid_argument("--devices must be >= 3");
    } else if (arg == "--device") {
      o.device_bytes = ctflash::util::ParseByteSize(next());
    } else if (arg == "--rate") {
      o.rate_iops = std::stod(next());
    } else if (arg == "--epochs") {
      o.epochs = std::stoull(next());
      if (o.epochs < 4) throw std::invalid_argument("--epochs must be >= 4");
    } else if (arg == "--epoch-us") {
      o.epoch_us = std::stoull(next());
    } else if (arg == "--users") {
      o.users = std::stoull(next());
    } else if (arg == "--theta") {
      o.theta = std::stod(next());
    } else if (arg == "--workers") {
      o.workers = static_cast<std::uint32_t>(std::stoul(next()));
      if (o.workers == 0) throw std::invalid_argument("--workers must be >= 1");
    } else if (arg == "--p99-factor") {
      o.p99_factor = std::stod(next());
    } else if (arg == "--imbalance") {
      o.imbalance = std::stod(next());
    } else if (arg == "--quick") {
      o.devices = 4;
      o.device_bytes = 32ull << 20;
      o.rate_iops = 8'000.0;
      o.epochs = 6;
      o.epoch_us = 100'000;
      o.users = 100'000;
    } else if (arg == "--json") {
      o.json_path = next();
    } else if (arg == "--trace-out") {
      o.trace_out_path = next();
    } else if (arg == "--metrics-out") {
      o.metrics_out_path = next();
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

/// The shared fleet scenario; the fault + policy differ per arm.
Json BaseSpec(const Options& o, const std::string& name) {
  Json spec;
  spec["cluster"] = name;
  spec["seed"] = std::uint64_t{17};
  Json fleet;
  fleet["devices"] = o.devices;
  fleet["spares"] = std::uint64_t{1};
  spec["fleet"] = fleet;
  Json router;
  router["shards"] = std::uint64_t{16} * o.devices;
  router["replicas"] = std::uint64_t{2};
  router["vnodes"] = std::uint64_t{64};
  spec["router"] = router;
  Json device;
  device["device_bytes"] = o.device_bytes;
  device["prefill_pct"] = std::uint64_t{75};
  spec["device"] = device;
  Json users;
  users["count"] = o.users;
  users["zipf_theta"] = o.theta;
  spec["users"] = users;
  Json workload;
  workload["rate_iops"] = o.rate_iops;
  workload["read_fraction"] = 0.9;
  workload["request_bytes"] = std::uint64_t{16} * 1024;
  workload["epochs"] = o.epochs;
  workload["epoch_us"] = o.epoch_us;
  workload["timeout_us"] = std::uint64_t{1'000'000};
  spec["workload"] = workload;
  return spec;
}

/// Kill one mid-ring device a bit into epoch 1 (epoch 0 stays the clean
/// pre-failure baseline).
Json WithDeviceLoss(Json spec, const Options& o, const std::string& policy) {
  Json fault;
  fault["device"] = std::uint64_t{1};
  fault["kind"] = "device";
  fault["at_us"] = o.epoch_us + o.epoch_us / 5;
  JsonArray faults;
  faults.push_back(std::move(fault));
  spec["faults"] = Json(std::move(faults));
  Json rebalance;
  rebalance["policy"] = policy;
  // Small chunks avoid head-of-line blocking behind multi-page rebuild
  // transactions; the byte cap keeps rebuild-driven GC on the adopting
  // spare from owning the serving tail.
  rebalance["migration_chunk"] = std::uint64_t{16} * 1024;
  rebalance["rebuild_bytes_per_sec"] =
      static_cast<double>(o.device_bytes) / 8.0;
  spec["rebalance"] = rebalance;
  return spec;
}

/// Puts one mid-ring device on a progressive wear ramp from the start of
/// the run: GC erases retire blocks probabilistically until the spare pool
/// is gone — unobserved, the device eventually dies mid-epoch on an
/// unrecoverable media error.
///
/// Block retirement only happens at GC erases, so the arm reshapes the
/// shared scenario until GC actually churns at bench scale: short blocks
/// (many small blocks, so the spare pool drains in fine steps while the
/// per-page program cost stays put), a deep prefill, a write-heavy
/// workload paced so each device sees a steady ~2.5 MiB of new writes per
/// epoch, and a doubled epoch horizon for the ramp to play out.  Both
/// wear arms share the reshape, so the on_observed-vs-on_failure
/// comparison stays apples to apples.
Json WithWearRamp(Json spec, const Options& o, const std::string& policy) {
  Json& device = spec["device"];
  device["pages_per_block"] = std::uint64_t{32};
  device["prefill_pct"] = std::uint64_t{95};
  Json& workload = spec["workload"];
  const double read_fraction = 0.5;
  const std::uint64_t write_bytes_per_device_epoch = 1792ull * 1024;
  const std::uint64_t request_bytes = std::uint64_t{16} * 1024;
  const double writes_per_sec =
      static_cast<double>(write_bytes_per_device_epoch) /
      static_cast<double>(request_bytes) * static_cast<double>(o.devices) *
      1e6 / static_cast<double>(o.epoch_us);
  workload["rate_iops"] = writes_per_sec / (1.0 - read_fraction);
  workload["read_fraction"] = read_fraction;
  workload["epochs"] = o.epochs * 3;
  Json fault;
  fault["device"] = std::uint64_t{1};
  fault["kind"] = "wear";
  fault["erase_fail_prob"] = 0.15;
  fault["program_fail_prob"] = 0.02;
  JsonArray faults;
  faults.push_back(std::move(fault));
  spec["faults"] = Json(std::move(faults));
  Json rebalance;
  rebalance["policy"] = policy;
  rebalance["migration_chunk"] = std::uint64_t{16} * 1024;
  rebalance["rebuild_bytes_per_sec"] =
      static_cast<double>(o.device_bytes) / 8.0;
  if (policy == "on_observed") {
    // The drain decision rides the ramp's own symptoms: the program
    // verify-fail trend (visible from the first sick write) holds the
    // score just under failing, and the first spare-pool burn tips it
    // over.  The shared-workload GC and retry signals are parked high so
    // they cannot drain healthy devices seeing the same churn.
    Json health;
    health["spare_fail_frac"] = 0.3;
    health["program_fail_rate"] = 0.025;
    health["gc_stall_fail_share"] = 0.95;
    health["retry_fail_rate"] = 0.95;
    health["ewma_alpha"] = 0.6;
    rebalance["health"] = health;
    // A deliberately loose SLO: present in the report (exercising the SLO
    // leg end-to-end) but only breached by timeout-scale tails the drain
    // exists to prevent.
    Json slo;
    slo["read_p99_target_us"] = std::uint64_t{900'000};
    rebalance["slo"] = slo;
  }
  spec["rebalance"] = rebalance;
  return spec;
}

int Fail(const std::string& what) {
  std::cerr << "SELF-ASSERT FAILED: " << what << "\n";
  return 1;
}

ClusterResult RunArm(const Json& spec_json, std::uint32_t workers) {
  ClusterSim sim(ClusterSpec::Parse(spec_json));
  return sim.Run(workers);
}

/// Epoch the director logged the (first) failure in; -1 when none.
std::int64_t DetectionEpoch(const ClusterResult& r) {
  if (r.events.empty()) return -1;
  return static_cast<std::int64_t>(r.events[0].GetUintOr("epoch", 0));
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint32_t workers =
      options.workers != 0 ? options.workers : std::min(8u, hw);

  std::cout << "=== Cluster scenario: shard router over a device fleet ===\n";
  std::cout << "fleet: " << options.devices << " devices + 1 spare x "
            << (options.device_bytes >> 20) << " MiB, "
            << options.users << " users (zipf " << options.theta << "), "
            << options.rate_iops << " IOPS, " << options.epochs << " x "
            << options.epoch_us << " us epochs, " << workers << " workers\n";

  // Assert 1: worker count must not change a single report byte.  The
  // failure arm exercises every code path (faults, director, migration).
  {
    const Json det_spec =
        WithDeviceLoss(BaseSpec(options, "cluster-det"), options, "on_failure");
    const std::string one = RunArm(det_spec, 1).DeterministicJson().Dump(2);
    const std::string many =
        RunArm(det_spec, std::max(2u, std::min(4u, hw)))
            .DeterministicJson()
            .Dump(2);
    std::cout << "deterministic report across worker counts: "
              << (one == many ? "IDENTICAL" : "DIFFER") << " (" << one.size()
              << " bytes)\n";
    if (one != many) {
      return Fail("worker count changed the deterministic cluster report");
    }
  }

  // --- healthy arm ---------------------------------------------------------
  const ClusterResult healthy =
      RunArm(BaseSpec(options, "cluster-healthy"), workers);
  std::uint64_t arrivals = 0, timeouts = 0;
  for (const EpochSummary& e : healthy.epochs) {
    arrivals += e.arrivals;
    timeouts += e.timeouts;
  }
  std::uint64_t completed = 0, ring_devices = 0, max_load = 0;
  double worst_device_p99 = 0.0;
  for (const DeviceSummary& d : healthy.devices) {
    completed += d.completed;
    if (d.primary_shards == 0) continue;  // idle spare
    ++ring_devices;
    max_load = std::max(max_load, d.completed);
    worst_device_p99 = std::max(worst_device_p99, d.read.p99_us());
  }
  const double cluster_p50 = healthy.epochs[0].read.p50_us();
  const double cluster_p99 = healthy.epochs[0].read.p99_us();
  const double mean_load =
      static_cast<double>(completed) / static_cast<double>(ring_devices);
  std::cout << "\nhealthy: " << arrivals << " arrivals, " << completed
            << " completed, cluster read p50/p99 " << cluster_p50 << "/"
            << cluster_p99 << " us, worst device p99 " << worst_device_p99
            << " us, load max/mean " << (static_cast<double>(max_load) /
                                         mean_load)
            << "\n";
  if (healthy.devices_failed != 0 || timeouts != 0) {
    return Fail("healthy arm saw failures/timeouts");
  }
  if (completed != arrivals) {
    return Fail("healthy arm dropped requests: " + std::to_string(arrivals) +
                " arrivals vs " + std::to_string(completed) + " completed");
  }
  if (cluster_p99 <= 0.0) return Fail("healthy cluster read p99 is zero");
  // Assert 2: placement keeps Zipf load bounded across the ring.
  if (static_cast<double>(max_load) > options.imbalance * mean_load) {
    return Fail("device load imbalance " +
                std::to_string(static_cast<double>(max_load) / mean_load) +
                " exceeds bound " + std::to_string(options.imbalance));
  }

  // --- device-loss arms ----------------------------------------------------
  const ClusterResult rebalanced = RunArm(
      WithDeviceLoss(BaseSpec(options, "cluster-rebalance"), options,
                     "on_failure"),
      workers);
  const ClusterResult control = RunArm(
      WithDeviceLoss(BaseSpec(options, "cluster-control"), options, "none"),
      workers);

  auto epoch_tails = [](const ClusterResult& r) {
    std::string line;
    for (const EpochSummary& e : r.epochs) {
      if (!line.empty()) line += " ";
      line += std::to_string(static_cast<std::uint64_t>(e.read.p99_us()));
    }
    return line;
  };
  std::cout << "per-epoch read p99 (us): rebalance [" << epoch_tails(rebalanced)
            << "], control [" << epoch_tails(control) << "]\n";

  const std::int64_t detect = DetectionEpoch(rebalanced);
  if (detect < 0) return Fail("rebalance arm never detected the failure");
  const double pre_p99 = rebalanced.epochs[0].read.p99_us();
  if (pre_p99 <= 0.0) return Fail("pre-failure read p99 is zero");
  double post_p99 = 0.0;
  for (std::size_t e = static_cast<std::size_t>(detect) + 1;
       e < rebalanced.epochs.size(); ++e) {
    post_p99 = std::max(post_p99, rebalanced.epochs[e].read.p99_us());
  }
  std::uint64_t rebuild_io = 0;
  for (const DeviceSummary& d : rebalanced.devices) {
    rebuild_io += d.rebuild_reads + d.rebuild_writes;
  }
  const double bound = options.p99_factor * pre_p99;
  std::cout << "rebalance: detected epoch " << detect << ", "
            << rebalanced.shards_moved << " shards -> spare, "
            << rebalanced.migration_bytes << " rebuild bytes ("
            << rebuild_io << " rebuild dispatches), post-failover read p99 "
            << post_p99 << " us (bound " << bound << " = "
            << options.p99_factor << "x pre-failure " << pre_p99 << ")\n";

  // Assert 4: rebalancing restores the tail and actually did work.
  if (rebalanced.devices_failed != 1 || rebalanced.spares_used != 1) {
    return Fail("rebalance arm did not fail+adopt exactly one device");
  }
  if (rebalanced.shards_moved == 0 || rebalanced.migration_ops == 0 ||
      rebuild_io == 0) {
    return Fail("rebalance arm moved no shards / issued no rebuild I/O");
  }
  if (post_p99 > bound) {
    return Fail("post-failover read p99 " + std::to_string(post_p99) +
                " us exceeds " + std::to_string(bound) + " us");
  }

  // Assert 5: the un-rebalanced control blows through the same bound.
  const double control_final_p99 = control.epochs.back().read.p99_us();
  std::uint64_t control_timeouts = 0;
  for (const EpochSummary& e : control.epochs) control_timeouts += e.timeouts;
  std::cout << "control: " << control_timeouts
            << " timeouts, final-epoch read p99 " << control_final_p99
            << " us\n";
  if (control.shards_moved != 0 || control.migration_ops != 0) {
    return Fail("control arm must not rebalance");
  }
  if (control_timeouts == 0) {
    return Fail("control arm never timed out (device loss vacuous?)");
  }
  if (control_final_p99 <= bound) {
    return Fail("control final read p99 " + std::to_string(control_final_p99) +
                " us did not exceed the bound " + std::to_string(bound) +
                " us — the failure arm is not stressing the router");
  }

  // --- wear-ramp arms: observed drain vs death-driven rebalance ------------
  const Json wear_failure_spec = WithWearRamp(
      BaseSpec(options, "cluster-wear"), options, "on_failure");
  const Json wear_observed_spec = WithWearRamp(
      BaseSpec(options, "cluster-wear"), options, "on_observed");
  const ClusterResult wear_failure = RunArm(wear_failure_spec, workers);
  ClusterSim observed_sim(ClusterSpec::Parse(wear_observed_spec));
  const ClusterResult observed = observed_sim.Run(workers);

  // Assert 6 (determinism leg): the observed policy's monitors live in the
  // serial director phase, so its report must also be worker-invariant.
  {
    const std::string one =
        RunArm(wear_observed_spec, 1).DeterministicJson().Dump(2);
    const std::string many = RunArm(wear_observed_spec,
                                    std::max(2u, std::min(4u, hw)))
                                 .DeterministicJson()
                                 .Dump(2);
    if (one != many) {
      return Fail("worker count changed the on_observed cluster report");
    }
  }

  const std::int64_t death_epoch = DetectionEpoch(wear_failure);
  const std::int64_t drain_epoch = DetectionEpoch(observed);
  std::cout << "\nwear ramp: on_failure death epoch " << death_epoch
            << ", on_observed drain epoch " << drain_epoch << "\n";
  std::cout << "device 1 health: " << observed.devices[1].health.Dump()
            << "\n";
  std::cout << "per-epoch read p99 (us): on_failure ["
            << epoch_tails(wear_failure) << "], on_observed ["
            << epoch_tails(observed) << "]\n";

  // Assert 6: the ramp must actually kill the unobserved device, and the
  // observed policy must drain it strictly earlier, while still alive.
  if (death_epoch < 0 || wear_failure.devices_failed != 1 ||
      !wear_failure.devices[1].fatal) {
    return Fail("wear ramp did not kill device 1 under on_failure");
  }
  if (drain_epoch < 0 || observed.devices_drained != 1 ||
      !observed.devices[1].drained) {
    return Fail("on_observed never drained the wearing device");
  }
  if (observed.devices[1].fatal || observed.devices_failed != 0) {
    return Fail("on_observed drain came too late: the device still died");
  }
  if (drain_epoch >= death_epoch) {
    return Fail("drain epoch " + std::to_string(drain_epoch) +
                " is not before the on_failure death epoch " +
                std::to_string(death_epoch));
  }
  const std::string drain_cause =
      observed.events[0].GetStringOr("cause", "");
  if (observed.events[0].GetStringOr("action", "") != "drained") {
    return Fail("first on_observed event is not a drain");
  }

  // Assert 7: over the incident window (the epochs where the unobserved
  // arm is dying/dead), observation keeps the cluster tail no worse.
  double failure_post_p99 = 0.0, observed_post_p99 = 0.0;
  for (std::size_t e = static_cast<std::size_t>(death_epoch);
       e < wear_failure.epochs.size(); ++e) {
    failure_post_p99 =
        std::max(failure_post_p99, wear_failure.epochs[e].read.p99_us());
    observed_post_p99 =
        std::max(observed_post_p99, observed.epochs[e].read.p99_us());
  }
  std::cout << "post-incident read p99: on_observed " << observed_post_p99
            << " us vs on_failure " << failure_post_p99 << " us (cause: "
            << drain_cause << ")\n";
  if (observed_post_p99 > failure_post_p99) {
    return Fail("on_observed post-incident read p99 " +
                std::to_string(observed_post_p99) +
                " us exceeds on_failure's " +
                std::to_string(failure_post_p99) + " us");
  }

  // The health/SLO report sections must be populated end to end.
  const std::string observed_dump = observed.DeterministicJson().Dump(2);
  if (observed_dump.find("\"health\"") == std::string::npos ||
      observed_dump.find("\"slo\"") == std::string::npos ||
      observed_dump.find("\"devices_failing\"") == std::string::npos) {
    return Fail("on_observed report is missing health/SLO sections");
  }
  const Json* dev1_health = observed.devices[1].health.Get("state");
  if (dev1_health == nullptr || dev1_health->AsString() == "healthy") {
    return Fail("drained device's health snapshot still reads healthy");
  }

  // Perfetto export must carry the per-device health counter tracks.
  const std::string fleet_trace = observed_sim.FleetChromeTrace();
  if (fleet_trace.find("health_score") == std::string::npos) {
    return Fail("fleet trace has no health_score counter track");
  }
  if (!options.trace_out_path.empty()) {
    std::ofstream tout(options.trace_out_path);
    if (!tout) {
      std::cerr << "cannot write " << options.trace_out_path << "\n";
      return 1;
    }
    tout << fleet_trace;
    std::cout << "fleet trace written to " << options.trace_out_path << " ("
              << fleet_trace.size() << " bytes, digest "
              << ctflash::obs::TraceDigest(fleet_trace) << ")\n";
  }

  // Metrics registry over the observed fleet's phase breakdowns; the
  // quantile-extraction helper must agree with the estimator exactly.
  ctflash::obs::MetricsRegistry registry;
  for (std::size_t d = 0; d < observed.devices.size(); ++d) {
    ctflash::obs::ExportPhaseStats(observed.devices[d].phases,
                                   "device-" + std::to_string(d), registry);
  }
  registry.AddCounter("cluster.devices_drained", observed.devices_drained);
  registry.AddCounter("cluster.devices_failed", observed.devices_failed);
  {
    const auto q = registry.HistogramQuantiles("device-0.read.total");
    const auto& direct = registry.Histogram("device-0.read.total");
    if (q.p99_us != direct.quantiles().Quantile(0.99)) {
      return Fail("HistogramQuantiles disagrees with QuantileEstimator");
    }
  }
  if (!options.metrics_out_path.empty()) {
    std::ofstream mout(options.metrics_out_path);
    if (!mout) {
      std::cerr << "cannot write " << options.metrics_out_path << "\n";
      return 1;
    }
    mout << registry.ToJson().Dump(2) << "\n";
    std::cout << "metrics written to " << options.metrics_out_path << "\n";
  }

  Json report;
  report["bench"] = std::string("cluster");
  report["healthy"] = healthy.Report();
  report["rebalance"] = rebalanced.Report();
  report["control"] = control.Report();
  report["wear_failure"] = wear_failure.Report();
  report["wear_observed"] = observed.Report();
  Json checks;
  checks["arrivals"] = arrivals;
  checks["completed"] = completed;
  checks["cluster_read_p50_us"] = cluster_p50;
  checks["cluster_read_p99_us"] = cluster_p99;
  checks["worst_device_read_p99_us"] = worst_device_p99;
  checks["load_max_over_mean"] = static_cast<double>(max_load) / mean_load;
  checks["imbalance_bound"] = options.imbalance;
  checks["detect_epoch"] = static_cast<std::uint64_t>(detect);
  checks["pre_failure_read_p99_us"] = pre_p99;
  checks["post_failover_read_p99_us"] = post_p99;
  checks["p99_factor_bound"] = options.p99_factor;
  checks["shards_moved"] = rebalanced.shards_moved;
  checks["rebuild_dispatches"] = rebuild_io;
  checks["rebuild_bytes"] = rebalanced.migration_bytes;
  checks["control_timeouts"] = control_timeouts;
  checks["control_final_read_p99_us"] = control_final_p99;
  checks["wear_death_epoch"] = static_cast<std::uint64_t>(death_epoch);
  checks["wear_drain_epoch"] = static_cast<std::uint64_t>(drain_epoch);
  checks["wear_drain_cause"] = drain_cause;
  checks["wear_failure_post_p99_us"] = failure_post_p99;
  checks["wear_observed_post_p99_us"] = observed_post_p99;
  report["self_check"] = checks;
  std::ofstream out(options.json_path);
  out << report.Dump(2) << "\n";
  std::cout << "\nall self-asserts passed; wrote " << options.json_path
            << "\n";
  return 0;
}
