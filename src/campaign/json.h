// Minimal JSON value type, parser, and deterministic serializer.
//
// The campaign spec (campaign/spec.h) and the merged campaign results are
// JSON; the toolchain offers no JSON library and the project adds no
// dependencies, so this implements the small subset the campaign layer
// needs: the six JSON value kinds, strict parsing with line/column errors,
// and a dump that is DETERMINISTIC — object keys serialize in sorted order
// (objects are std::map) and numbers print round-trippably — because
// campaign result bytes are compared verbatim across worker counts.
//
// Numbers are stored as double (JSON's own model); integers up to 2^53
// round-trip exactly, which covers every counter the campaign reports.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ctflash::campaign {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Kind { kNull = 0, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double n) : kind_(Kind::kNumber), number_(n) {}
  Json(int n) : Json(static_cast<double>(n)) {}
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(JsonArray a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : kind_(Kind::kObject), object_(std::move(o)) {}

  /// Parses strict JSON; throws std::runtime_error with position info.
  static Json Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBool() const { return kind_ == Kind::kBool; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool AsBool() const;
  double AsDouble() const;
  /// Integral accessors additionally reject non-integral numbers.
  std::int64_t AsInt() const;
  std::uint64_t AsUint() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  const JsonObject& AsObject() const;
  JsonArray& AsArray();
  JsonObject& AsObject();

  /// Object field access; Get returns nullptr when absent (or not an
  /// object), the *Or forms parse optional spec fields with defaults.
  const Json* Get(const std::string& key) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;
  std::int64_t GetIntOr(const std::string& key, std::int64_t fallback) const;
  std::uint64_t GetUintOr(const std::string& key, std::uint64_t fallback) const;
  std::string GetStringOr(const std::string& key, const std::string& fallback) const;

  /// Object field assignment (makes this an object if null).
  Json& operator[](const std::string& key);

  /// Deterministic serialization: sorted object keys, shortest
  /// round-trippable numbers, "\uXXXX" escapes for control characters.
  /// `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace ctflash::campaign
