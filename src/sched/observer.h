// Scheduler observation interface: the single sink for dispatch-order and
// transaction-execution events.
//
// Historically IoScheduler carried a test-only std::function dispatch hook
// next to the functional completion callback — two parallel pathways with
// different lifetimes and no execution-side visibility.  This interface
// replaces that: the scheduler publishes every dispatch (with the context
// needed to attribute where the transaction's time went) and every
// execution completion to attached observers.  The lifecycle tracer
// (obs::Tracer) is the production observer; the legacy OnDispatch callback
// is now an adapter over this interface, so there is exactly one pathway.
//
// Observers are borrowed, never owned, and must outlive the scheduler.
// With no observers attached the scheduler skips all context computation —
// the disabled-mode cost is one empty-vector check per dispatch.
#pragma once

#include <cstdint>

#include "sched/transaction.h"
#include "util/types.h"

namespace ctflash::sched {

/// "No die": the transaction's target die is not resolvable at dispatch
/// time (unmapped reads; writes, whose die the FTL allocator picks during
/// execution).
inline constexpr std::uint32_t kNoDie = ~0u;

/// Everything the scheduler knows about a transaction at the moment it
/// leaves the ready set, for stall attribution:
///  * dispatch_us - enqueue_us is the queued phase (slot wait + losing
///    picks to higher-ranked work);
///  * die_free_at - dispatch_us is time the transaction will spend waiting
///    for its target die inside the media phase (the timelines book the
///    operation behind whatever currently occupies the die);
///  * write_held marks a host write that the GC write-admission guard held
///    in the ready set at least once.
struct DispatchContext {
  Us dispatch_us = 0;
  Us enqueue_us = 0;
  std::uint32_t die = kNoDie;  ///< predicted target die (global index)
  Us die_free_at = 0;          ///< that die's timeline availability
  bool write_held = false;     ///< deferred by the GC admission guard
};

class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;

  /// Fires for every transaction in dispatch order, host and GC alike,
  /// immediately before the device books its timelines.
  virtual void OnDispatch(const FlashTransaction& txn,
                          const DispatchContext& context) = 0;

  /// Fires when the device finishes executing the transaction (the
  /// completion event), before the host interface sees the completion.
  virtual void OnTxnExecuted(const FlashTransaction& txn, Us dispatch_us,
                             Us completion_us) = 0;
};

}  // namespace ctflash::sched
