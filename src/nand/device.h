// Behavioural model of the NAND array: page/block state, command execution
// with flash-constraint enforcement, and operation timing.
//
// Enforced constraints (violations return a NandStatus error, they never
// silently corrupt state):
//  * erase-before-write: a page can be programmed exactly once per P/E cycle;
//  * in-block sequential programming: page p can be programmed only when all
//    pages < p of the block are already programmed (one-shot order, the
//    constraint the paper's virtual-block lifecycle revolves around);
//  * reads target programmed pages only;
//  * erase operates on whole blocks and resets their program pointer.
//
// The device also tallies per-operation counters and P/E cycles per block,
// which the FTL layers and the figure benches consume.
#pragma once

#include <cstdint>
#include <vector>

#include "nand/geometry.h"
#include "nand/latency_model.h"
#include "util/serial.h"
#include "util/types.h"

namespace ctflash::nand {

enum class NandStatus {
  kOk = 0,
  kInvalidAddress,       ///< ppn/block outside the geometry
  kProgramOutOfOrder,    ///< violates in-block sequential-program order
  kProgramPageNotFree,   ///< page already programmed since last erase
  kReadFreePage,         ///< read of a never-programmed page
  kBlockBad,             ///< block retired (exceeded endurance budget)
};

const char* NandStatusName(NandStatus status);

/// Aggregate operation counters.
struct NandCounters {
  std::uint64_t reads = 0;
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  Us read_time_us = 0;
  Us program_time_us = 0;
  Us erase_time_us = 0;
};

/// Device-wide wear digest (health telemetry: obs::HealthMonitor scores
/// the erase tally against the endurance budget).
struct WearSummary {
  std::uint64_t total_erases = 0;   ///< sum of per-block P/E cycles
  std::uint32_t max_pe_cycles = 0;  ///< hottest block
  std::uint64_t bad_blocks = 0;     ///< retired (endurance or grown bad)
};

class NandDevice {
 public:
  NandDevice(const NandGeometry& geometry, const NandTiming& timing,
             std::uint32_t endurance_pe_cycles = 3000);

  const NandGeometry& geometry() const { return latency_.geometry(); }
  const LatencyModel& latency_model() const { return latency_; }

  /// Programs one page; on success `*op_us` (if non-null) receives the cell
  /// program time (transfer time is accounted by the SSD channel model).
  NandStatus Program(Ppn ppn, Us* op_us = nullptr);

  /// Reads one page.
  NandStatus Read(Ppn ppn, Us* op_us = nullptr) const;

  /// Erases a block, resetting all its pages to free and bumping P/E.
  NandStatus Erase(BlockId block, Us* op_us = nullptr);

  /// Marks a block bad out-of-band (grown bad block: failed program/erase
  /// verify under fault injection).  Every later op on it returns kBlockBad.
  void MarkBad(BlockId block);

  // --- state queries ------------------------------------------------------
  /// Next page index the block's program pointer allows (== pages_per_block
  /// when the block is full).
  std::uint32_t NextProgramPage(BlockId block) const;
  bool IsBlockFull(BlockId block) const;
  bool IsBlockErased(BlockId block) const;
  bool IsPageProgrammed(Ppn ppn) const;
  std::uint32_t PeCycles(BlockId block) const;
  bool IsBlockBad(BlockId block) const;
  std::uint32_t endurance_pe_cycles() const { return endurance_; }

  /// One pass over the block table: total/max P/E and the bad-block tally.
  WearSummary Wear() const;

  std::uint64_t TotalBlocks() const { return geometry().TotalBlocks(); }

  const NandCounters& counters() const { return counters_; }
  /// Resets the counters but not the array state.
  void ResetCounters() { counters_ = NandCounters{}; }

  /// Serializes per-block program pointers / P/E cycles / bad flags plus the
  /// operation counters.  LoadState throws when the block count mismatches.
  void SaveState(util::StateWriter& w) const;
  void LoadState(util::StateReader& r);

 private:
  struct BlockState {
    std::uint32_t next_page = 0;
    std::uint32_t pe_cycles = 0;
    bool bad = false;
  };

  bool ValidPpn(Ppn ppn) const { return ppn < geometry().TotalPages(); }
  bool ValidBlock(BlockId b) const { return b < geometry().TotalBlocks(); }

  LatencyModel latency_;
  std::uint32_t endurance_;
  std::vector<BlockState> blocks_;
  mutable NandCounters counters_;
};

}  // namespace ctflash::nand
