#include "core/two_level_lru.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace ctflash::core {

TwoLevelLru::TwoLevelLru(std::size_t hot_capacity, std::size_t iron_capacity)
    : hot_capacity_(hot_capacity), iron_capacity_(iron_capacity) {
  if (hot_capacity == 0 || iron_capacity == 0) {
    throw std::invalid_argument("TwoLevelLru: capacities must be > 0");
  }
}

TwoLevelLru::Tier TwoLevelLru::TierOf(Lpn lpn) const {
  const auto it = index_.find(lpn);
  return it == index_.end() ? Tier::kNone : it->second.tier;
}

void TwoLevelLru::Detach(Lpn lpn) {
  const auto it = index_.find(lpn);
  if (it == index_.end()) return;
  (it->second.tier == Tier::kHot ? hot_ : iron_).erase(it->second.it);
  index_.erase(it);
}

std::optional<Lpn> TwoLevelLru::InsertHead(Lpn lpn, Tier tier) {
  std::list<Lpn>& list = tier == Tier::kHot ? hot_ : iron_;
  const std::size_t capacity =
      tier == Tier::kHot ? hot_capacity_ : iron_capacity_;
  list.push_front(lpn);
  index_[lpn] = Node{list.begin(), tier};
  if (list.size() <= capacity) return std::nullopt;
  // Demote the LRU tail: iron-hot -> hot head; hot -> out (cold area).
  const Lpn victim = list.back();
  list.pop_back();
  index_.erase(victim);
  if (tier == Tier::kIronHot) return InsertHead(victim, Tier::kHot);
  return victim;
}

TwoLevelLru::Outcome TwoLevelLru::OnWrite(Lpn lpn) {
  Outcome out;
  const Tier current = TierOf(lpn);
  // Algorithm 1 lines 2-5: drop the duplicated entry before re-inserting.
  Detach(lpn);
  const Tier target = current == Tier::kIronHot ? Tier::kIronHot : Tier::kHot;
  out.tier = target;
  out.demoted_to_cold = InsertHead(lpn, target);
  return out;
}

TwoLevelLru::Outcome TwoLevelLru::OnRead(Lpn lpn) {
  Outcome out;
  const Tier current = TierOf(lpn);
  if (current == Tier::kNone) return out;  // not in the hot area
  Detach(lpn);
  out.tier = Tier::kIronHot;  // "promote if read"
  out.demoted_to_cold = InsertHead(lpn, Tier::kIronHot);
  return out;
}

void TwoLevelLru::Erase(Lpn lpn) { Detach(lpn); }

std::optional<Lpn> TwoLevelLru::HotTail() const {
  if (hot_.empty()) return std::nullopt;
  return hot_.back();
}

std::optional<Lpn> TwoLevelLru::IronTail() const {
  if (iron_.empty()) return std::nullopt;
  return iron_.back();
}

bool TwoLevelLru::CheckInvariants() const {
  if (hot_.size() > hot_capacity_ || iron_.size() > iron_capacity_) return false;
  if (index_.size() != hot_.size() + iron_.size()) return false;
  for (auto it = hot_.begin(); it != hot_.end(); ++it) {
    const auto node = index_.find(*it);
    if (node == index_.end()) return false;
    if (node->second.tier != Tier::kHot || node->second.it != it) return false;
  }
  for (auto it = iron_.begin(); it != iron_.end(); ++it) {
    const auto node = index_.find(*it);
    if (node == index_.end()) return false;
    if (node->second.tier != Tier::kIronHot || node->second.it != it) return false;
  }
  return true;
}

void TwoLevelLru::SaveState(util::StateWriter& w) const {
  w.Tag("2LRU");
  w.PutU64Seq(hot_);
  w.PutU64Seq(iron_);
}

void TwoLevelLru::LoadState(util::StateReader& r) {
  r.ExpectTag("2LRU");
  const std::vector<std::uint64_t> hot = r.GetU64Seq();
  const std::vector<std::uint64_t> iron = r.GetU64Seq();
  if (hot.size() > hot_capacity_ || iron.size() > iron_capacity_) {
    throw std::runtime_error("snapshot: LRU list exceeds capacity (hot " +
                             std::to_string(hot.size()) + "/" +
                             std::to_string(hot_capacity_) + ", iron " +
                             std::to_string(iron.size()) + "/" +
                             std::to_string(iron_capacity_) + ")");
  }
  hot_.assign(hot.begin(), hot.end());
  iron_.assign(iron.begin(), iron.end());
  index_.clear();
  for (auto it = hot_.begin(); it != hot_.end(); ++it) {
    index_[*it] = Node{it, Tier::kHot};
  }
  for (auto it = iron_.begin(); it != iron_.end(); ++it) {
    index_[*it] = Node{it, Tier::kIronHot};
  }
}

}  // namespace ctflash::core
