#include "campaign/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "host/host_interface.h"
#include "host/load_generator.h"
#include "obs/export.h"
#include "obs/tracer.h"
#include "replay/trace_source.h"
#include "ssd/experiment.h"
#include "ssd/ssd.h"
#include "trace/synthetic.h"
#include "trace/trace.h"
#include "util/config.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/types.h"

namespace ctflash::campaign {

namespace {

double WallMs(std::chrono::steady_clock::time_point from,
              std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::uint64_t BytesOf(const Json& parent, const std::string& key,
                      std::uint64_t fallback) {
  const Json* v = parent.Get(key);
  if (v == nullptr || v->IsNull()) return fallback;
  if (v->IsNumber()) return v->AsUint();
  return util::ParseByteSize(v->AsString());
}

using util::ParallelFor;

Json LatencyJson(const util::LatencyStats& stats) {
  Json out;
  out["count"] = stats.count();
  out["mean_us"] = stats.mean_us();
  out["p50_us"] = stats.p50_us();
  out["p95_us"] = stats.p95_us();
  out["p99_us"] = stats.p99_us();
  out["p999_us"] = stats.p999_us();
  out["max_us"] = stats.max_us();
  return out;
}

Json LoadStatsJson(const host::LoadStats& stats) {
  Json out;
  out["requests"] = stats.requests;
  out["makespan_us"] = stats.MakespanUs();
  out["iops"] = stats.Iops();
  out["read_latency"] = LatencyJson(stats.read_latency);
  out["write_latency"] = LatencyJson(stats.write_latency);
  out["die_utilization"] = stats.die_utilization;
  out["channel_utilization"] = stats.channel_utilization;
  return out;
}

Json RunClosedLoop(host::HostInterface& host, const Json& w,
                   std::uint64_t prefill_bytes, std::uint64_t seed) {
  host::ClosedLoopGenerator::Config cfg;
  cfg.queue_depth =
      static_cast<std::uint32_t>(w.GetUintOr("queue_depth", 8));
  cfg.total_requests = w.GetUintOr("requests", 10'000);
  cfg.read_fraction = w.GetDoubleOr("read_fraction", 1.0);
  cfg.request_bytes = BytesOf(w, "request_bytes", 16 * kKiB);
  cfg.footprint_bytes = BytesOf(w, "footprint", prefill_bytes);
  cfg.seed = seed;
  cfg.Validate();
  host::ClosedLoopGenerator gen(host, cfg);
  return LoadStatsJson(gen.Run());
}

Json RunTenants(host::HostInterface& host, const Json& w,
                std::uint64_t prefill_bytes, std::uint64_t seed) {
  const Json* list = w.Get("tenants");
  if (list == nullptr || !list->IsArray() || list->AsArray().empty()) {
    throw std::runtime_error(
        "campaign: tenants workload needs a non-empty \"tenants\" array");
  }
  const std::size_t n = list->AsArray().size();
  // Default working sets: the prefilled space split evenly, tenant order.
  const std::uint64_t slice = prefill_bytes / n;
  std::vector<host::TenantWorkload> workloads;
  for (std::size_t i = 0; i < n; ++i) {
    const Json& t = list->AsArray()[i];
    host::TenantWorkload tw;
    tw.tenant = static_cast<qos::TenantId>(t.GetUintOr("tenant", i));
    tw.queue_depth = static_cast<std::uint32_t>(t.GetUintOr("queue_depth", 8));
    tw.interarrival_us = static_cast<Us>(t.GetUintOr("interarrival_us", 0));
    tw.total_requests = t.GetUintOr("requests", 1'000);
    tw.read_fraction = t.GetDoubleOr("read_fraction", 1.0);
    tw.request_bytes = BytesOf(t, "request_bytes", 16 * kKiB);
    tw.footprint_base_bytes = BytesOf(t, "footprint_base", i * slice);
    tw.footprint_bytes = BytesOf(t, "footprint", slice);
    tw.seed = t.GetUintOr("seed", seed + i);
    tw.Validate();
    workloads.push_back(std::move(tw));
  }
  host::MultiTenantGenerator gen(host, std::move(workloads));
  const std::vector<host::TenantLoadStats> per_tenant = gen.Run();
  Json out;
  JsonArray tenants;
  std::uint64_t requests = 0;
  for (const host::TenantLoadStats& t : per_tenant) {
    Json entry = LoadStatsJson(t.load);
    entry["tenant"] = static_cast<std::uint64_t>(t.tenant);
    requests += t.load.requests;
    tenants.push_back(std::move(entry));
  }
  out["requests"] = requests;
  out["tenants"] = Json(std::move(tenants));
  return out;
}

Json RunOpenLoopRecords(host::HostInterface& host,
                        std::vector<trace::TraceRecord> records,
                        double time_scale) {
  host::OpenLoopGenerator gen(host, std::move(records), time_scale);
  return LoadStatsJson(gen.Run());
}

Json RunSynthetic(host::HostInterface& host, const Json& w,
                  std::uint64_t prefill_bytes, std::uint64_t seed) {
  const std::string preset = w.GetStringOr("preset", "web");
  const std::uint64_t requests = w.GetUintOr("requests", 20'000);
  const std::uint64_t footprint = BytesOf(w, "footprint", prefill_bytes);
  trace::SyntheticWorkloadConfig cfg;
  if (preset == "web") {
    cfg = trace::WebServerWorkload(footprint, requests, seed);
  } else if (preset == "media") {
    cfg = trace::MediaServerWorkload(footprint, requests, seed);
  } else {
    throw std::runtime_error("campaign: unknown synthetic preset \"" + preset +
                             "\" (expected \"web\" or \"media\")");
  }
  trace::SyntheticTraceGenerator gen(cfg);
  return RunOpenLoopRecords(host, gen.Generate(),
                            w.GetDoubleOr("time_scale", 1.0));
}

Json RunTraceFile(host::HostInterface& host, const Json& w) {
  const Json* path = w.Get("path");
  if (path == nullptr || !path->IsString()) {
    throw std::runtime_error(
        "campaign: trace workload needs a \"path\" string");
  }
  const std::uint64_t limit = w.GetUintOr("limit", 0);
  replay::StreamingMsrCsvSource source(path->AsString());
  std::vector<trace::TraceRecord> records;
  while (auto record = source.Next()) {
    records.push_back(*record);
    if (limit != 0 && records.size() >= limit) break;
  }
  return RunOpenLoopRecords(host, std::move(records),
                            w.GetDoubleOr("time_scale", 1.0));
}

Json DeviceCountersJson(const ssd::Ssd& ssd) {
  const ftl::FtlStats& stats = ssd.ftl().stats();
  Json out;
  out["host_read_pages"] = stats.host_read_pages;
  out["host_write_pages"] = stats.host_write_pages;
  out["gc_page_copies"] = stats.gc_page_copies;
  out["gc_erases"] = stats.gc_erases;
  out["gc_stale_copies"] = stats.gc_stale_copies;
  out["waf"] = stats.Waf();
  return out;
}

Json ReadErrorStatsJson(const ftl::ReadErrorStats& s) {
  Json out;
  out["sampled_reads"] = s.sampled_reads;
  out["uncorrectable_reads"] = s.uncorrectable_reads;
  out["retried_reads"] = s.retried_reads;
  out["retry_rungs"] = s.retry_rungs;
  out["recovered_reads"] = s.recovered_reads;
  out["unrecovered_reads"] = s.unrecovered_reads;
  out["lost_reads"] = s.lost_reads;
  return out;
}

Json FaultMetricsJson(const ssd::Ssd& ssd) {
  const ftl::FaultStats& fs = ssd.ftl().fault_stats();
  Json out;
  out["program_failures"] = fs.program_failures;
  out["erase_failures"] = fs.erase_failures;
  out["host_unreadable_pages"] = fs.host_unreadable_pages;
  out["gc_lost_pages"] = fs.gc_lost_pages;
  out["lost_pages"] = fs.LostPages();
  out["blocks_retired"] = ssd.ftl().blocks().RetiredCount();
  out["host_reads"] = ReadErrorStatsJson(ssd.target().read_error_stats());
  out["gc_reads"] = ReadErrorStatsJson(ssd.target().gc_read_error_stats());
  return out;
}

/// Per-arm outcome taxonomy (see ArmResult::outcome).
std::string ClassifyFaultOutcome(const ssd::Ssd& ssd) {
  const ftl::FaultStats& fs = ssd.ftl().fault_stats();
  if (fs.LostPages() > 0) return "data-loss";
  const ftl::ReadErrorStats& h = ssd.target().read_error_stats();
  const ftl::ReadErrorStats& g = ssd.target().gc_read_error_stats();
  const bool recovery_ran = fs.program_failures > 0 || fs.erase_failures > 0 ||
                            h.recovered_reads > 0 || g.recovered_reads > 0 ||
                            ssd.ftl().blocks().RetiredCount() > 0;
  return recovery_ran ? "recovered" : "masked";
}

/// Cumulative wear / media-error / GC counters for the arm's health
/// evaluation (mirrors the cluster director's per-epoch sampler; here the
/// window is the whole measured workload).
obs::HealthSample CollectHealthSample(const ssd::Ssd& ssd,
                                      const obs::Tracer* tracer) {
  obs::HealthSample s;
  const ftl::FtlBase& f = ssd.ftl();
  s.free_blocks = f.blocks().FreeCount();
  s.retired_blocks = f.blocks().RetiredCount();
  s.total_blocks = f.blocks().total_blocks();
  s.gc_floor_blocks = f.config().gc_threshold_low;
  const nand::NandDevice& nand = ssd.target().nand();
  s.total_erases = nand.Wear().total_erases;
  s.endurance_pe_cycles = nand.endurance_pe_cycles();
  const ftl::ReadErrorStats& host_err = ssd.target().read_error_stats();
  const ftl::ReadErrorStats& gc_err = ssd.target().gc_read_error_stats();
  s.sampled_reads = host_err.sampled_reads + gc_err.sampled_reads;
  s.retried_reads = host_err.retried_reads + gc_err.retried_reads;
  s.unrecovered_reads = host_err.unrecovered_reads + gc_err.unrecovered_reads;
  s.lost_pages = f.fault_stats().LostPages();
  s.program_pages = f.stats().host_write_pages + f.stats().gc_page_copies;
  s.program_failures = f.fault_stats().program_failures;
  if (tracer != nullptr) {
    const obs::PhaseBreakdown& read = tracer->phases().read;
    s.read_stall_gc_us =
        read.stall_us[static_cast<std::size_t>(obs::StallCause::kDieBusyGc)];
    s.read_media_us = static_cast<std::uint64_t>(read.media.total_us());
  }
  return s;
}

/// Shared-prefill key: device shape + prefill parameters.  gc_routing is
/// deliberately absent from the shape key (see campaign/snapshot.h) so
/// inline- and scheduled-GC arms share one prefill.
std::string PrefillKey(const ArmSpec& arm) {
  return SnapshotShapeKey(arm.device) +
         "|pct=" + std::to_string(arm.prefill_pct) +
         "|chunk=" + std::to_string(arm.prefill_chunk_bytes);
}

}  // namespace

ArmResult RunCampaignArm(const ArmSpec& arm, const DeviceState* shared) {
  ArmResult out;
  out.name = arm.name;
  out.index = arm.index;
  out.config = arm.ConfigSummary();
  try {
    ssd::Ssd ssd(arm.device);
    const std::uint64_t prefill_bytes =
        ssd.LogicalBytes() * arm.prefill_pct / 100;
    Us prefill_end = 0;
    if (shared != nullptr) {
      ssd.Restore(*shared);
      prefill_end = shared->clock_us;
    } else if (prefill_bytes > 0) {
      ssd::ExperimentRunner prefiller(ssd);
      prefill_end = prefiller.Prefill(prefill_bytes, arm.prefill_chunk_bytes);
    }
    // Faults arm after the restore/prefill: the aged snapshot is shared by
    // every fault plan, and the prefill itself must stay fault-free so the
    // arms diverge only through their injected schedules.
    if (arm.inject_faults) {
      ssd.target().ArmFaults(arm.fault_plan, arm.fault_handling,
                             arm.fault_seed);
    }
    host::HostInterface host(ssd, arm.host);
    host.AdvanceTo(prefill_end);

    // Phase tracing covers the measured workload only (aggregate mode, no
    // spans): attached after the prefill/restore so its epochs anchor at
    // the measurement start.
    std::unique_ptr<obs::Tracer> tracer;
    if (arm.trace_phases) {
      obs::TracerConfig tc;
      tc.record_spans = false;
      tc.metrics_epoch_us = arm.metrics_epoch_us;
      tc.epoch_base_us = prefill_end;
      tracer = std::make_unique<obs::Tracer>(tc);
      host.AttachTracer(tracer.get());
    }

    // Health evaluation windows the whole measured workload: baseline
    // sampled here (post-restore, pre-traffic), final sample after the run.
    std::unique_ptr<obs::HealthMonitor> health;
    if (arm.eval_health) {
      health = std::make_unique<obs::HealthMonitor>(arm.health);
      health->Observe(CollectHealthSample(ssd, tracer.get()));
    }

    const Json& w = *arm.merged.Get("workload");
    const std::string kind = w.GetStringOr("kind", "closed_loop");
    if (kind == "closed_loop") {
      out.metrics = RunClosedLoop(host, w, prefill_bytes, arm.seed);
    } else if (kind == "tenants") {
      out.metrics = RunTenants(host, w, prefill_bytes, arm.seed);
    } else if (kind == "synthetic") {
      out.metrics = RunSynthetic(host, w, prefill_bytes, arm.seed);
    } else if (kind == "trace") {
      out.metrics = RunTraceFile(host, w);
    } else {
      throw std::runtime_error("campaign: unknown workload kind \"" + kind +
                               "\"");
    }
    out.metrics["device"] = DeviceCountersJson(ssd);
    if (tracer != nullptr) {
      out.metrics["phases"] = obs::PhaseStatsJson(tracer->phases());
      if (arm.metrics_epoch_us > 0) {
        JsonArray epochs;
        for (const obs::PhaseStats& e : tracer->epoch_phases()) {
          epochs.push_back(obs::PhaseStatsJson(e));
        }
        out.metrics["phase_epochs"] = Json(std::move(epochs));
      }
    }
    if (arm.inject_faults) {
      out.metrics["faults"] = FaultMetricsJson(ssd);
      out.outcome = ClassifyFaultOutcome(ssd);
    }
    if (health != nullptr) {
      health->Observe(CollectHealthSample(ssd, tracer.get()));
      out.metrics["health"] = health->ToJson();
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.ok = false;
    out.error = e.what();
    out.metrics = Json();
    // An arm that dies mid-run on an unrecoverable media error (e.g. the
    // spare pool retired away) is a data-loss outcome, not a campaign bug.
    if (arm.inject_faults) out.outcome = "data-loss";
  }
  return out;
}

CampaignRunner::CampaignRunner(CampaignSpec spec) : spec_(std::move(spec)) {}

CampaignResult CampaignRunner::Run(std::uint32_t workers_override) {
  const std::uint32_t workers =
      workers_override != 0 ? workers_override : spec_.workers;
  CampaignResult result;
  result.campaign = spec_.name;
  result.workers = workers;
  result.share_prefill = spec_.share_prefill;
  result.arms.resize(spec_.arms.size());

  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1: one prefill snapshot per (shape, prefill) group.
  struct PrefillGroup {
    const ArmSpec* representative = nullptr;
    std::unique_ptr<DeviceState> state;
    std::exception_ptr error;
  };
  std::vector<PrefillGroup> groups;
  std::vector<std::size_t> arm_group(spec_.arms.size(), 0);
  if (spec_.share_prefill) {
    std::map<std::string, std::size_t> group_of;
    for (std::size_t i = 0; i < spec_.arms.size(); ++i) {
      const std::string key = PrefillKey(spec_.arms[i]);
      auto [it, inserted] = group_of.emplace(key, groups.size());
      if (inserted) {
        groups.push_back(PrefillGroup{&spec_.arms[i], nullptr, nullptr});
      }
      arm_group[i] = it->second;
    }
    ParallelFor(groups.size(), workers, [&](std::size_t g) {
      PrefillGroup& group = groups[g];
      try {
        const ArmSpec& arm = *group.representative;
        ssd::Ssd ssd(arm.device);
        const std::uint64_t bytes = ssd.LogicalBytes() * arm.prefill_pct / 100;
        Us end = 0;
        if (bytes > 0) {
          ssd::ExperimentRunner prefiller(ssd);
          end = prefiller.Prefill(bytes, arm.prefill_chunk_bytes);
        }
        group.state = std::make_unique<DeviceState>(ssd.Snapshot(end));
      } catch (...) {
        group.error = std::current_exception();
      }
    });
    for (const PrefillGroup& group : groups) {
      if (group.error) std::rethrow_exception(group.error);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Phase 2: arms.
  ParallelFor(spec_.arms.size(), workers, [&](std::size_t i) {
    const DeviceState* shared =
        spec_.share_prefill ? groups[arm_group[i]].state.get() : nullptr;
    result.arms[i] = RunCampaignArm(spec_.arms[i], shared);
  });
  const auto t2 = std::chrono::steady_clock::now();

  result.prefill_wall_ms = WallMs(t0, t1);
  result.arms_wall_ms = WallMs(t1, t2);
  result.total_wall_ms = WallMs(t0, t2);
  result.prefill_groups = groups.size();
  result.prefill_restores =
      spec_.share_prefill ? spec_.arms.size() : 0;
  return result;
}

Json CampaignResult::DeterministicJson() const {
  Json out;
  out["campaign"] = campaign;
  JsonArray arm_array;
  for (const ArmResult& arm : arms) {
    Json entry;
    entry["name"] = arm.name;
    entry["index"] = arm.index;
    entry["ok"] = arm.ok;
    if (!arm.ok) entry["error"] = arm.error;
    if (!arm.outcome.empty()) entry["outcome"] = arm.outcome;
    entry["config"] = arm.config;
    entry["metrics"] = arm.metrics;
    arm_array.push_back(std::move(entry));
  }
  out["arms"] = Json(std::move(arm_array));
  return out;
}

Json CampaignResult::Report() const {
  Json out = DeterministicJson();
  Json timing;
  timing["workers"] = static_cast<std::uint64_t>(workers);
  timing["share_prefill"] = share_prefill;
  timing["total_wall_ms"] = total_wall_ms;
  timing["prefill_wall_ms"] = prefill_wall_ms;
  timing["arms_wall_ms"] = arms_wall_ms;
  timing["prefill_groups"] = prefill_groups;
  timing["prefill_restores"] = prefill_restores;
  out["timing"] = std::move(timing);
  return out;
}

std::string CsvField(const std::string& value) {
  if (value.find_first_of(",\"\r\n") == std::string::npos) return value;
  std::string out;
  out.reserve(value.size() + 2);
  out += '"';
  for (const char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CampaignResult::Csv() const {
  std::string csv =
      "arm,ok,requests,iops,read_mean_us,read_p99_us,write_mean_us,"
      "write_p99_us,waf,read_paced_us,read_queued_us,read_media_us,"
      "write_paced_us,write_queued_us,write_media_us,health_state,"
      "health_score\n";
  auto field = [](const Json& metrics, const char* a, const char* b) {
    const Json* section = metrics.Get(a);
    if (section == nullptr) return std::string("0");
    const Json* v = section->Get(b);
    return v == nullptr ? std::string("0") : v->Dump();
  };
  // Mean of one phase series from the arm's "phases" breakdown ("0" when
  // the arm ran without observability).
  auto phase = [](const Json& metrics, const char* side, const char* which) {
    const Json* phases = metrics.Get("phases");
    if (phases == nullptr) return std::string("0");
    const Json* s = phases->Get(side);
    if (s == nullptr) return std::string("0");
    const Json* p = s->Get(which);
    if (p == nullptr) return std::string("0");
    const Json* mean = p->Get("mean_us");
    return mean == nullptr ? std::string("0") : mean->Dump();
  };
  for (const ArmResult& arm : arms) {
    csv += CsvField(arm.name) + "," + (arm.ok ? "1" : "0") + ",";
    if (arm.ok) {
      const Json* requests = arm.metrics.Get("requests");
      const Json* iops = arm.metrics.Get("iops");
      csv += (requests ? requests->Dump() : "0") + ",";
      csv += (iops ? iops->Dump() : "0") + ",";
      csv += field(arm.metrics, "read_latency", "mean_us") + ",";
      csv += field(arm.metrics, "read_latency", "p99_us") + ",";
      csv += field(arm.metrics, "write_latency", "mean_us") + ",";
      csv += field(arm.metrics, "write_latency", "p99_us") + ",";
      csv += field(arm.metrics, "device", "waf") + ",";
      csv += phase(arm.metrics, "read", "paced") + ",";
      csv += phase(arm.metrics, "read", "queued") + ",";
      csv += phase(arm.metrics, "read", "media") + ",";
      csv += phase(arm.metrics, "write", "paced") + ",";
      csv += phase(arm.metrics, "write", "queued") + ",";
      csv += phase(arm.metrics, "write", "media") + ",";
      // Health columns ("" / 0 when the arm ran without evaluation).
      const Json* health = arm.metrics.Get("health");
      const Json* state = health ? health->Get("state") : nullptr;
      const Json* score = health ? health->Get("score") : nullptr;
      csv += (state ? CsvField(state->AsString()) : std::string()) + ",";
      csv += score ? score->Dump() : std::string("0");
    } else {
      csv += "0,0,0,0,0,0,0,0,0,0,0,0,0,,0";
    }
    csv += "\n";
  }
  return csv;
}

}  // namespace ctflash::campaign
