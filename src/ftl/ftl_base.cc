#include "ftl/ftl_base.h"

#include <algorithm>

#include <stdexcept>
#include <string>

#include "util/logging.h"

namespace ctflash::ftl {

const char* GcRoutingName(GcRouting routing) {
  switch (routing) {
    case GcRouting::kInline:
      return "inline";
    case GcRouting::kScheduled:
      return "scheduled";
  }
  return "?";
}

void FtlConfig::Validate() const {
  if (op_ratio <= 0.0 || op_ratio >= 0.9) {
    throw std::invalid_argument("FtlConfig: op_ratio must be in (0, 0.9)");
  }
  if (gc_threshold_low < 2) {
    throw std::invalid_argument("FtlConfig: gc_threshold_low must be >= 2");
  }
  if (gc_threshold_high <= gc_threshold_low) {
    throw std::invalid_argument(
        "FtlConfig: gc_threshold_high must exceed gc_threshold_low");
  }
  if (write_frontiers == 0) {
    throw std::invalid_argument("FtlConfig: write_frontiers must be >= 1");
  }
  if (charge_gc_to_write && gc_routing == GcRouting::kScheduled) {
    throw std::invalid_argument(
        "FtlConfig: charge_gc_to_write models foreground (inline) GC and is "
        "meaningless with gc_routing = kScheduled");
  }
}

std::uint64_t FtlBase::ComputeLogicalPages(const FlashTarget& target,
                                           const FtlConfig& config) {
  config.Validate();
  const std::uint64_t physical = target.geometry().TotalPages();
  const auto logical_pages =
      static_cast<std::uint64_t>(static_cast<double>(physical) *
                                 (1.0 - config.op_ratio));
  if (logical_pages == 0) {
    throw std::invalid_argument("FtlBase: device too small for op_ratio");
  }
  // Room for the open write frontiers during GC: up to `write_frontiers`
  // per stream (host + GC relocation), 2 total in the seed configuration.
  const std::uint64_t min_spare =
      config.gc_threshold_high + 2ull * config.write_frontiers;
  if (target.geometry().TotalBlocks() <
      min_spare + logical_pages / target.geometry().pages_per_block) {
    throw std::invalid_argument(
        "FtlBase: over-provisioning too small for the GC thresholds");
  }
  return logical_pages;
}

FtlBase::FtlBase(FlashTarget& target, const FtlConfig& config)
    : target_(target),
      config_(config),
      logical_pages_(ComputeLogicalPages(target, config)),
      map_(logical_pages_, target.geometry().TotalPages()),
      blocks_(target.geometry().TotalBlocks(),
              target.geometry().pages_per_block),
      wear_leveler_(config.wear) {}

void FtlBase::CheckRange(std::uint64_t offset_bytes,
                         std::uint64_t size_bytes) const {
  if (size_bytes == 0) {
    throw std::invalid_argument("FtlBase: zero-sized request");
  }
  if (offset_bytes + size_bytes > LogicalBytes()) {
    throw std::invalid_argument("FtlBase: request beyond logical capacity");
  }
}

RequestResult FtlBase::Read(std::uint64_t offset_bytes,
                            std::uint64_t size_bytes, Us arrival_us) {
  CheckRange(offset_bytes, size_bytes);
  const Lpn first = offset_bytes / PageSize();
  const Lpn last = (offset_bytes + size_bytes - 1) / PageSize();
  const auto pages = static_cast<std::uint32_t>(last - first + 1);
  RequestResult r;
  r.arrival_us = arrival_us;
  r.pages = pages;
  r.completion_us = DoRead(first, pages, offset_bytes, size_bytes, arrival_us);
  if (r.completion_us < arrival_us) r.completion_us = arrival_us;
  stats_.host_read_pages += pages;
  return r;
}

std::optional<BlockId> FtlBase::PickVictim(const BlockManager& blocks) {
  const auto wl = wear_leveler_.MaybeOverrideVictim(blocks, target_.nand());
  if (wl) return wl;
  return blocks.PickGcVictim();
}

std::uint64_t FtlBase::TransferBytesFor(Lpn lpn, std::uint64_t offset_bytes,
                                        std::uint64_t size_bytes) const {
  const std::uint64_t page_start = lpn * PageSize();
  const std::uint64_t page_end = page_start + PageSize();
  const std::uint64_t req_end = offset_bytes + size_bytes;
  const std::uint64_t lo = std::max(page_start, offset_bytes);
  const std::uint64_t hi = std::min(page_end, req_end);
  return hi > lo ? hi - lo : 0;
}

RequestResult FtlBase::Write(std::uint64_t offset_bytes,
                             std::uint64_t size_bytes, Us arrival_us) {
  CheckRange(offset_bytes, size_bytes);
  const Lpn first = offset_bytes / PageSize();
  const Lpn last = (offset_bytes + size_bytes - 1) / PageSize();
  const auto pages = static_cast<std::uint32_t>(last - first + 1);
  RequestResult r;
  r.arrival_us = arrival_us;
  r.pages = pages;
  r.completion_us = DoWrite(first, pages, size_bytes, arrival_us);
  if (r.completion_us < arrival_us) r.completion_us = arrival_us;
  stats_.host_write_pages += pages;
  return r;
}

Us FtlBase::MaybeRunGc(Us earliest) {
  // Scheduled routing: GC is planned/dispatched by the host scheduler
  // through the transaction API below; nothing to do inline.
  if (ScheduledGcActive()) return earliest;
  if (in_gc_) return earliest;
  Us completion = earliest;
  while (blocks_.FreeCount() <= config_.gc_threshold_low) {
    const auto victim = PickVictim(blocks_);
    if (!victim) break;  // nothing reclaimable
    in_gc_ = true;
    OnGcVictimChosen(*victim);
    const auto& geo = target_.geometry();
    // Relocate every valid page of the victim.
    for (std::uint32_t p = 0; p < geo.pages_per_block; ++p) {
      const Ppn src = geo.PpnOf(*victim, p);
      const Lpn lpn = map_.LpnOf(src);
      if (lpn == kInvalidLpn) continue;
      const Us done = RelocatePageForGc(lpn, src, *victim, completion);
      if (done > completion) completion = done;
    }
    completion = EraseGcVictim(*victim, completion);
    in_gc_ = false;
    if (blocks_.FreeCount() >= config_.gc_threshold_high) break;
  }
  stats_.gc_time_us += completion - earliest;
  return completion;
}

Us FtlBase::EraseGcVictim(BlockId victim, Us earliest) {
  const MediaOpResult er = target_.EraseBlockChecked(victim, earliest);
  if (er.failed || blocks_.RetirePending(victim)) {
    // Grown-bad: the erase failed verify (or an earlier program failure
    // flagged the block).  Retire it — out of the free list and the victim
    // pool — and mark it bad in the array so any stale access fails loudly.
    if (er.failed) fault_stats_.erase_failures++;
    target_.nand().MarkBad(victim);
    blocks_.Retire(victim);
  } else {
    blocks_.Release(victim);
  }
  OnGcBlockErased(victim);
  stats_.gc_erases++;
  wear_leveler_.OnErase();
  return er.done;
}

void FtlBase::OnProgramFailure(Ppn failed_ppn, bool die_lost) {
  const auto& geo = target_.geometry();
  const BlockId block = geo.BlockOf(failed_ppn);
  fault_stats_.program_failures++;
  blocks_.FlagForRetirement(block);
  if (die_lost) {
    // The whole die is gone: retire its spare blocks so allocators stop
    // claiming them.  Idempotent (an already-swept die has no free blocks
    // left), so no extra state to carry through snapshots.
    const std::uint64_t die = geo.DieOfBlock(block);
    blocks_.RetireFreeIf(
        [&](BlockId b) { return geo.DieOfBlock(b) == die; });
  }
}

void FtlBase::OnHostReadLost(Lpn lpn) {
  const Ppn old = map_.Unmap(lpn);
  if (old != kInvalidPpn) {
    blocks_.RemoveValid(target_.geometry().BlockOf(old));
  }
  fault_stats_.host_unreadable_pages++;
}

void FtlBase::OnGcReadLost(Lpn lpn, BlockId victim) {
  map_.Unmap(lpn);
  blocks_.RemoveValid(victim);
  fault_stats_.gc_lost_pages++;
}

void FtlBase::PlanGcVictim(std::vector<sched::FlashTransaction>& out) {
  const auto victim = PickVictim(blocks_);
  if (!victim) {
    // Nothing reclaimable (all spare space sits in open blocks); stand down
    // until the pool state changes.
    gc_active_ = false;
    return;
  }
  OnGcVictimChosen(*victim);
  const auto& geo = target_.geometry();
  const std::uint64_t job = next_gc_job_++;
  for (std::uint32_t p = 0; p < geo.pages_per_block; ++p) {
    const Ppn src = geo.PpnOf(*victim, p);
    const Lpn lpn = map_.LpnOf(src);
    if (lpn == kInvalidLpn) continue;  // already invalid at planning time
    sched::FlashTransaction txn;
    txn.request_id = job;
    txn.source = sched::TxnSource::kGcCopy;
    txn.lpn = lpn;  // informational; execution re-resolves via the reverse map
    txn.gc_src = src;
    txn.gc_block = *victim;
    out.push_back(txn);
  }
  sched::FlashTransaction erase;
  erase.request_id = job;
  erase.source = sched::TxnSource::kGcErase;
  erase.gc_block = *victim;
  out.push_back(erase);
}

void FtlBase::DrainGcTransactions(std::vector<sched::FlashTransaction>& out) {
  if (!ScheduledGcActive()) return;
  // One victim in flight at a time: plan the next only once the previous
  // job's transactions all executed (the erase replenishes the pool, so the
  // trigger check below sees the true state).
  if (gc_outstanding_ != 0) return;
  if (!gc_active_ && GcWritePressure()) gc_active_ = true;
  if (!gc_active_) return;
  if (blocks_.FreeCount() >= config_.gc_threshold_high) {
    gc_active_ = false;
    return;
  }
  const std::size_t before = out.size();
  PlanGcVictim(out);
  gc_outstanding_ += out.size() - before;
  gc_txns_emitted_ += out.size() - before;
}

void FtlBase::AccumulateGcTime(Us start, Us done) {
  // Scheduled GC transactions overlap on the die timelines, so summing
  // per-transaction (done - start) would over-count queueing many times
  // over.  Count the union of the busy intervals instead (dispatch times
  // are nondecreasing in simulated time), which keeps gc_time_us
  // comparable with the inline mode's per-burst span accounting.
  const Us from = std::max(start, gc_busy_until_);
  if (done > from) stats_.gc_time_us += done - from;
  if (done > gc_busy_until_) gc_busy_until_ = done;
}

Us FtlBase::ExecuteGcTransaction(const sched::FlashTransaction& txn,
                                 Us earliest) {
  CTFLASH_CHECK(gc_outstanding_ > 0);
  gc_outstanding_--;
  gc_txns_executed_++;
  if (txn.source == sched::TxnSource::kGcCopy) {
    const Lpn lpn = map_.LpnOf(txn.gc_src);
    if (lpn == kInvalidLpn) {
      // The host rewrote this page between planning and dispatch: the copy
      // is moot and carries no flash work.
      stats_.gc_stale_copies++;
      return earliest;
    }
    const Us done = RelocatePageForGc(lpn, txn.gc_src, txn.gc_block, earliest);
    AccumulateGcTime(earliest, done);
    return done;
  }
  CTFLASH_CHECK(txn.source == sched::TxnSource::kGcErase);
  // Every copy of this job executed before the erase (scheduler-enforced),
  // so the victim holds no live data.
  CTFLASH_CHECK(blocks_.ValidCount(txn.gc_block) == 0);
  const Us done = EraseGcVictim(txn.gc_block, earliest);
  AccumulateGcTime(earliest, done);
  return done;
}

void FtlBase::SaveState(util::StateWriter& w) const {
  if (gc_outstanding_ != 0) {
    throw std::logic_error(
        "FtlBase::SaveState: " + std::to_string(gc_outstanding_) +
        " GC transactions drained but not executed; quiesce the scheduler "
        "before snapshotting");
  }
  if (in_gc_) {
    throw std::logic_error("FtlBase::SaveState: called from inside GC");
  }
  w.Tag("FTLB");
  map_.SaveState(w);
  blocks_.SaveState(w);
  w.PutU64(stats_.host_read_pages);
  w.PutU64(stats_.host_write_pages);
  w.PutU64(stats_.gc_page_copies);
  w.PutU64(stats_.gc_erases);
  w.PutI64(stats_.gc_time_us);
  w.PutU64(stats_.gc_stale_copies);
  w.PutU64(fault_stats_.program_failures);
  w.PutU64(fault_stats_.erase_failures);
  w.PutU64(fault_stats_.host_unreadable_pages);
  w.PutU64(fault_stats_.gc_lost_pages);
  wear_leveler_.SaveState(w);
  w.PutI64(gc_busy_until_);
  w.PutBool(gc_active_);
  w.PutU64(gc_txns_emitted_);
  w.PutU64(gc_txns_executed_);
  w.PutU64(next_gc_job_);
  SaveVariantState(w);
}

void FtlBase::LoadState(util::StateReader& r) {
  r.ExpectTag("FTLB");
  map_.LoadState(r);
  blocks_.LoadState(r);
  stats_.host_read_pages = r.GetU64();
  stats_.host_write_pages = r.GetU64();
  stats_.gc_page_copies = r.GetU64();
  stats_.gc_erases = r.GetU64();
  stats_.gc_time_us = r.GetI64();
  stats_.gc_stale_copies = r.GetU64();
  fault_stats_.program_failures = r.GetU64();
  fault_stats_.erase_failures = r.GetU64();
  fault_stats_.host_unreadable_pages = r.GetU64();
  fault_stats_.gc_lost_pages = r.GetU64();
  wear_leveler_.LoadState(r);
  gc_busy_until_ = r.GetI64();
  gc_active_ = r.GetBool();
  gc_txns_emitted_ = r.GetU64();
  gc_txns_executed_ = r.GetU64();
  next_gc_job_ = r.GetU64();
  in_gc_ = false;
  gc_outstanding_ = 0;
  LoadVariantState(r);
}

}  // namespace ctflash::ftl
