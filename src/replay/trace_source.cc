#include "replay/trace_source.h"

#include <stdexcept>
#include <utility>

namespace ctflash::replay {

SyntheticTraceSource::SyntheticTraceSource(
    const trace::SyntheticWorkloadConfig& config)
    : config_(config),
      generator_(std::make_unique<trace::SyntheticTraceGenerator>(config)) {}

std::optional<trace::TraceRecord> SyntheticTraceSource::Next() {
  if (emitted_ >= config_.num_requests) return std::nullopt;
  ++emitted_;
  return generator_->Next();
}

void SyntheticTraceSource::Reset() {
  // The generator is seeded from the config alone, so a fresh instance
  // replays the identical stream.
  generator_ = std::make_unique<trace::SyntheticTraceGenerator>(config_);
  emitted_ = 0;
}

StreamingMsrCsvSource::StreamingMsrCsvSource(const std::string& path,
                                             const Options& options)
    : path_(path), options_(options), in_(path) {
  if (options_.window_records == 0) {
    throw std::invalid_argument(
        "StreamingMsrCsvSource: window_records must be > 0");
  }
  if (!in_) {
    throw std::runtime_error("StreamingMsrCsvSource: cannot open " + path);
  }
}

void StreamingMsrCsvSource::Refill() {
  std::string line;
  trace::TraceRecord record;
  std::string hostname;
  std::string* hostname_out =
      options_.hostname_filter.empty() ? nullptr : &hostname;
  while (window_.size() < options_.window_records && std::getline(in_, line)) {
    if (!parser_.ParseLine(line, record, hostname_out)) continue;
    if (hostname_out != nullptr && hostname != options_.hostname_filter) {
      continue;
    }
    window_.push_back(record);
  }
  if (window_.size() > peak_resident_) peak_resident_ = window_.size();
  if (!in_) exhausted_ = true;
}

std::optional<trace::TraceRecord> StreamingMsrCsvSource::Next() {
  if (window_.empty() && !exhausted_) Refill();
  if (window_.empty()) return std::nullopt;
  const trace::TraceRecord record = window_.front();
  window_.pop_front();
  return record;
}

void StreamingMsrCsvSource::Reset() {
  // Reopen rather than seekg: clears EOF state portably and restarts the
  // parser's rebase origin with it.
  in_ = std::ifstream(path_);
  if (!in_) {
    throw std::runtime_error("StreamingMsrCsvSource: cannot reopen " + path_);
  }
  parser_.Reset();
  window_.clear();
  exhausted_ = false;
}

}  // namespace ctflash::replay
