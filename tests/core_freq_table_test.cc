#include "core/access_frequency_table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ctflash::core {
namespace {

TEST(FreqTable, ConstructionValidation) {
  EXPECT_THROW(AccessFrequencyTable(0, 10), std::invalid_argument);
  EXPECT_THROW(AccessFrequencyTable(2, 0), std::invalid_argument);
}

TEST(FreqTable, UntrackedIsIcyCold) {
  const AccessFrequencyTable t(2, 100);
  EXPECT_EQ(t.FrequencyOf(5), 0u);
  EXPECT_FALSE(t.IsCold(5));
}

TEST(FreqTable, ReadsAccumulateAndPromote) {
  AccessFrequencyTable t(2, 100);
  EXPECT_EQ(t.OnRead(5), 1u);
  EXPECT_FALSE(t.IsCold(5));  // 1 < threshold 2
  EXPECT_EQ(t.OnRead(5), 2u);
  EXPECT_TRUE(t.IsCold(5));  // write-once-read-many now
}

TEST(FreqTable, WriteResetsPopularity) {
  AccessFrequencyTable t(2, 100);
  t.OnRead(5);
  t.OnRead(5);
  ASSERT_TRUE(t.IsCold(5));
  t.OnWrite(5);  // fresh content: popularity unknown again
  EXPECT_FALSE(t.IsCold(5));
  EXPECT_EQ(t.FrequencyOf(5), 0u);
}

TEST(FreqTable, RegisterSeedsFrequency) {
  AccessFrequencyTable t(3, 100);
  t.Register(7, 3);
  EXPECT_TRUE(t.IsCold(7));
  t.Register(7, 0);  // overwrite existing seed
  EXPECT_FALSE(t.IsCold(7));
}

TEST(FreqTable, EraseForgets) {
  AccessFrequencyTable t(2, 100);
  t.OnRead(5);
  t.Erase(5);
  EXPECT_EQ(t.FrequencyOf(5), 0u);
  EXPECT_EQ(t.Size(), 0u);
}

TEST(FreqTable, DecayHalvesAndDropsZeroes) {
  AccessFrequencyTable t(2, 4);
  // Fill to capacity with varying counts.
  t.Register(1, 1);
  t.Register(2, 4);
  t.Register(3, 8);
  t.Register(4, 1);
  EXPECT_EQ(t.Size(), 4u);
  // Next insert triggers aging: counts halve, zeroes evicted.
  t.OnRead(5);
  EXPECT_GE(t.decay_count(), 1u);
  EXPECT_EQ(t.FrequencyOf(1), 0u);  // 1/2 = 0 -> dropped
  EXPECT_EQ(t.FrequencyOf(2), 2u);
  EXPECT_EQ(t.FrequencyOf(3), 4u);
  EXPECT_EQ(t.FrequencyOf(5), 1u);
  EXPECT_LE(t.Size(), 4u);
}

TEST(FreqTable, CapacityNeverExceeded) {
  AccessFrequencyTable t(2, 16);
  for (Lpn l = 0; l < 1000; ++l) {
    t.OnRead(l % 100);
    ASSERT_LE(t.Size(), 16u);
  }
}

TEST(FreqTable, PathologicalAllPopularStillBounded) {
  AccessFrequencyTable t(2, 4);
  // Every entry has a large count, so halving never zeroes them.
  for (Lpn l = 0; l < 20; ++l) {
    t.Register(l, 1000);
    ASSERT_LE(t.Size(), 4u);
  }
}

TEST(FreqTable, SaturatesWithoutOverflow) {
  AccessFrequencyTable t(2, 10);
  t.Register(1, ~0u);
  EXPECT_EQ(t.OnRead(1), ~0u);  // clamped, no wraparound
}

TEST(FreqTable, ThresholdBoundaryExact) {
  AccessFrequencyTable t(5, 100);
  for (int i = 0; i < 4; ++i) t.OnRead(9);
  EXPECT_FALSE(t.IsCold(9));
  t.OnRead(9);
  EXPECT_TRUE(t.IsCold(9));
}

}  // namespace
}  // namespace ctflash::core
