// Trace-replay experiment harness.
//
// Replays a block trace against an Ssd and aggregates the metrics the
// paper's figures report: cumulative/mean read latency, cumulative/mean
// write latency, and erased-block count.  Replay is closed-loop by default
// (a request is issued at max(its trace timestamp, previous completion)),
// which keeps per-request latency device-bound and deterministic; open-loop
// replay (timestamps only) is available for queueing studies.
//
// The standard protocol, matching trace-driven FTL evaluation practice, is:
//   1. Prefill: sequentially write the trace's footprint so every read hits
//      mapped data and GC pressure is realistic;
//   2. reset all counters;
//   3. replay the trace and report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/load_generator.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"
#include "trace/trace.h"
#include "util/stats.h"
#include "util/types.h"

namespace ctflash::ssd {

struct ExperimentResult {
  std::string ftl_name;
  std::string workload_name;
  util::LatencyStats read_latency;
  util::LatencyStats write_latency;
  std::uint64_t erase_count = 0;
  std::uint64_t gc_page_copies = 0;
  std::uint64_t host_read_pages = 0;
  std::uint64_t host_write_pages = 0;
  double waf = 1.0;
  Us sim_end_us = 0;

  double TotalReadSeconds() const { return read_latency.total_seconds(); }
  double TotalWriteSeconds() const { return write_latency.total_seconds(); }
};

/// Relative enhancement of `ours` over `base` on a total-latency metric:
/// (base - ours) / base, i.e. +0.10 means 10 % faster.
double Enhancement(double base_total, double ours_total);

class ExperimentRunner {
 public:
  explicit ExperimentRunner(Ssd& ssd, bool closed_loop = true);

  /// Sequentially writes `bytes` (clipped to logical capacity) in
  /// `chunk_bytes` requests, then resets all statistics.  Returns the
  /// simulated time consumed by the prefill.
  Us Prefill(std::uint64_t bytes, std::uint64_t chunk_bytes = 256 * kKiB);

  /// Replays the trace.  Requests beyond the logical capacity are clipped
  /// (wrapped traces) — zero-length results are skipped.
  ExperimentResult Replay(const std::vector<trace::TraceRecord>& records,
                          const std::string& workload_name);

  /// Open-loop replay driven by the discrete-event engine: every request is
  /// an arrival event at its trace timestamp regardless of completions.
  /// With TimingMode::kQueued this exposes queueing delay under bursts (a
  /// latency-vs-load study); with service-time accounting it matches
  /// Replay(closed_loop=false).  Implemented on replay::ReplayEngine's
  /// direct mode (streaming chained arrivals, O(1) pending events); see
  /// src/replay/replay_engine.h for the host-interface-driven variant that
  /// exposes queueing, scheduling, and QoS.
  ExperimentResult ReplayOpenLoop(const std::vector<trace::TraceRecord>& records,
                                  const std::string& workload_name);

 private:
  /// Issues one (clipped) request and folds it into `result`; returns false
  /// when the record was clipped away entirely.
  bool IssueRecord(const trace::TraceRecord& record, Us arrival,
                   ExperimentResult& result);
  void FinalizeResult(ExperimentResult& result,
                      const std::string& workload_name) const;

  Ssd& ssd_;
  bool closed_loop_;
  Us clock_us_ = 0;  ///< completion time of the latest request
};

/// Convenience one-shot: build an Ssd from `config`, prefill `footprint`,
/// replay `records`, return the result.
ExperimentResult RunExperiment(const SsdConfig& config,
                               const std::vector<trace::TraceRecord>& records,
                               std::uint64_t footprint_bytes,
                               const std::string& workload_name);

// --- queue-depth sweeps (closed-loop, via the host interface) -------------

/// Knobs for RunQdSweep.  Each sweep point rebuilds and prefills a fresh
/// device so points are independent and bit-for-bit deterministic.
struct QdSweepOptions {
  std::vector<std::uint32_t> queue_depths = {1, 2, 4, 8, 16, 32};
  std::uint64_t requests_per_point = 20'000;
  double read_fraction = 1.0;  ///< writes funnel through one active block
  std::uint64_t request_bytes = 16 * kKiB;
  /// Prefill share of the logical space (percent) so reads hit mapped data.
  std::uint32_t prefill_pct = 80;
  std::uint64_t seed = 1;
  /// Max in-flight page transactions on the device (the device's internal
  /// command queue; the knob that caps parallelism extraction).
  std::uint32_t device_slots = 64;
};

/// One measured point of the sweep.
struct QdSweepPoint {
  std::uint32_t queue_depth = 0;
  std::uint64_t requests = 0;
  double iops = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double die_utilization = 0.0;
  double channel_utilization = 0.0;
  Us makespan_us = 0;
};

/// Closed-loop QD sweep: prefill, then `requests_per_point` random
/// request-aligned I/Os at each queue depth.  Forces TimingMode::kQueued —
/// with pure service-time accounting queue depth cannot matter.
std::vector<QdSweepPoint> RunQdSweep(const SsdConfig& config,
                                     const QdSweepOptions& options);

// --- multi-tenant QoS sweeps (see src/qos/) --------------------------------

/// Knobs for RunTenantQdSweep: a multi-tenant host configuration
/// (HostConfig::qos must be populated) plus one workload per tenant.  Each
/// sweep point rebuilds and prefills a fresh device, overrides every
/// closed-loop workload's queue depth with the point's QD, and runs all
/// tenants concurrently.
struct TenantSweepOptions {
  host::HostConfig host;
  std::vector<host::TenantWorkload> workloads;
  std::vector<std::uint32_t> queue_depths = {1, 2, 4, 8, 16};
  std::uint32_t prefill_pct = 80;
};

/// One tenant at one queue depth: latency/throughput plus the QoS-engine
/// telemetry (throttle counters, per-class dispatches, DRR deficits).
struct TenantSweepPoint {
  std::uint32_t queue_depth = 0;
  qos::TenantId tenant = 0;
  std::uint64_t requests = 0;
  double iops = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t throttled = 0;
  Us throttle_wait_us = 0;
  std::uint64_t read_dispatches = 0;
  std::uint64_t write_dispatches = 0;
  std::uint64_t read_deficit = 0;   ///< DRR state at end of run
  std::uint64_t write_deficit = 0;
};

/// Multi-tenant closed/paced-loop sweep over queue depths; returns one
/// point per (queue depth, workload) in sweep-then-workload order.
std::vector<TenantSweepPoint> RunTenantQdSweep(
    const SsdConfig& config, const TenantSweepOptions& options);

}  // namespace ctflash::ssd
