#include "cluster/cluster_sim.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "campaign/runner.h"
#include "obs/export.h"
#include "ssd/experiment.h"
#include "util/parallel.h"

namespace ctflash::cluster {

namespace {

/// splitmix64 finalizer (serial-phase hashing: offsets, per-device seeds).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

campaign::Json LatencyJson(const util::LatencyStats& s) {
  campaign::Json out;
  out["count"] = s.count();
  out["mean_us"] = s.mean_us();
  out["p50_us"] = s.p50_us();
  out["p99_us"] = s.p99_us();
  out["max_us"] = s.max_us();
  return out;
}

}  // namespace

ClusterSim::ClusterSim(ClusterSpec spec) : spec_(std::move(spec)) {
  spec_.Validate();
  router_ = std::make_unique<ShardRouter>(spec_.router);
  rng_.Reseed(Mix64(spec_.seed ^ 0xC105'7E2Dull));
  zipf_ = std::make_unique<util::ZipfSampler>(spec_.user_count,
                                              spec_.zipf_theta);
}

std::uint32_t ClusterSim::EpochOf(Us at) const {
  if (at <= run_start_us_) return 0;
  const std::uint64_t idx =
      static_cast<std::uint64_t>(at - run_start_us_) /
      static_cast<std::uint64_t>(spec_.epoch_us);
  return static_cast<std::uint32_t>(
      idx >= spec_.epochs ? spec_.epochs - 1 : idx);
}

std::uint64_t ClusterSim::UserOffset(std::uint64_t user) const {
  // A user's data lives at a stable slot inside the prefilled region, so
  // reads hit mapped pages and hot users create hot overwrite ranges.
  const std::uint64_t slot =
      Mix64(spec_.seed ^ 0x0FF5'E7ull ^ user) % offset_slots_;
  return slot * spec_.request_bytes;
}

void ClusterSim::BuildFleet(ClusterResult& result) {
  const std::uint32_t total = spec_.router.TotalDevices();
  devices_.resize(total);

  // One prefill for the whole fleet: device 0 runs it, everyone else
  // restores the snapshot (bit-identical to having run it directly).
  devices_[0].ssd = std::make_unique<ssd::Ssd>(spec_.device.device);
  prefill_bytes_ =
      devices_[0].ssd->LogicalBytes() * spec_.device.prefill_pct / 100;
  if (prefill_bytes_ > 0) {
    ssd::ExperimentRunner prefiller(*devices_[0].ssd);
    run_start_us_ =
        prefiller.Prefill(prefill_bytes_, spec_.device.prefill_chunk_bytes);
  }
  const campaign::DeviceState snapshot =
      devices_[0].ssd->Snapshot(run_start_us_);
  offset_slots_ = prefill_bytes_ / spec_.request_bytes;
  if (offset_slots_ == 0) {
    offset_slots_ = std::max<std::uint64_t>(
        1, devices_[0].ssd->LogicalBytes() / spec_.request_bytes);
  }

  for (std::uint32_t d = 0; d < total; ++d) {
    Device& dev = devices_[d];
    if (d != 0) {
      dev.ssd = std::make_unique<ssd::Ssd>(spec_.device.device);
      dev.ssd->Restore(snapshot);
    }
    // Faults arm after restore, exactly like campaign arms: the shared
    // snapshot stays fault-free and devices diverge only via their
    // schedules.
    const nand::FaultPlanConfig plan = spec_.FaultPlanFor(d, run_start_us_);
    if (plan.Armed()) {
      dev.ssd->target().ArmFaults(plan, spec_.fault_handling,
                                  Mix64(spec_.seed ^ 0xFA17'0000ull ^ d));
    }
    dev.host =
        std::make_unique<host::HostInterface>(*dev.ssd, spec_.device.host);
    dev.host->AdvanceTo(run_start_us_);
    if (spec_.trace_phases) {
      // Aggregate-only tracing: per-epoch phase rows on the cluster's own
      // epoch grid, no span recording (the fleet would dwarf the span cap).
      obs::TracerConfig tc;
      tc.record_spans = false;
      tc.metrics_epoch_us = spec_.epoch_us;
      tc.epoch_base_us = run_start_us_;
      tc.max_epochs = spec_.epochs;
      dev.tracer = std::make_unique<obs::Tracer>(tc);
      dev.host->AttachTracer(dev.tracer.get());
    }
    dev.epoch_read.resize(spec_.epochs);
    dev.epoch_write.resize(spec_.epochs);
  }
  if (spec_.policy == RebalancePolicy::kOnObserved) {
    health_.reserve(total);
    slo_.reserve(total);
    for (std::uint32_t d = 0; d < total; ++d) {
      health_.emplace_back(spec_.health);
      slo_.emplace_back(spec_.slo);
    }
  }
  result.epochs.resize(spec_.epochs);
}

obs::HealthSample ClusterSim::CollectHealthSample(const Device& dev) const {
  obs::HealthSample s;
  const ftl::FtlBase& f = dev.ssd->ftl();
  s.free_blocks = f.blocks().FreeCount();
  s.retired_blocks = f.blocks().RetiredCount();
  s.total_blocks = f.blocks().total_blocks();
  s.gc_floor_blocks = f.config().gc_threshold_low;
  const nand::NandDevice& nand = dev.ssd->target().nand();
  s.total_erases = nand.Wear().total_erases;
  s.endurance_pe_cycles = nand.endurance_pe_cycles();
  const ftl::ReadErrorStats& host_err = dev.ssd->target().read_error_stats();
  const ftl::ReadErrorStats& gc_err = dev.ssd->target().gc_read_error_stats();
  s.sampled_reads = host_err.sampled_reads + gc_err.sampled_reads;
  s.retried_reads = host_err.retried_reads + gc_err.retried_reads;
  s.unrecovered_reads =
      host_err.unrecovered_reads + gc_err.unrecovered_reads;
  s.lost_pages = f.fault_stats().LostPages();
  s.program_pages = f.stats().host_write_pages + f.stats().gc_page_copies;
  s.program_failures = f.fault_stats().program_failures;
  if (dev.tracer != nullptr) {
    const obs::PhaseBreakdown& read = dev.tracer->phases().read;
    s.read_stall_gc_us =
        read.stall_us[static_cast<std::size_t>(obs::StallCause::kDieBusyGc)];
    s.read_media_us = static_cast<std::uint64_t>(read.media.total_us());
  }
  return s;
}

void ClusterSim::GenerateEpoch(std::uint32_t epoch, ClusterResult& result) {
  const Us start = run_start_us_ + static_cast<Us>(epoch) * spec_.epoch_us;
  const double period_us = 1e6 / spec_.rate_iops;
  const auto count = static_cast<std::uint64_t>(
      static_cast<double>(spec_.epoch_us) / period_us);
  EpochSummary& summary = result.epochs[epoch];
  for (std::uint64_t i = 0; i < count; ++i) {
    const Us at = start + static_cast<Us>(static_cast<double>(i) * period_us);
    const std::uint64_t user = zipf_->Sample(rng_);
    const bool is_read = rng_.Bernoulli(spec_.read_fraction);
    const DeviceId target = router_->PrimaryOf(router_->ShardOfUser(user));
    ++summary.arrivals;
    if (devices_[target].fatal) {
      // A dead primary cannot serve; the request burns the SLA timeout.
      // Under "on_failure" this lasts at most one detection epoch, under
      // the "none" control it is the steady state.
      ++summary.timeouts;
      (is_read ? summary.read : summary.write)
          .Add(static_cast<Us>(spec_.timeout_us));
      if (spec_.trace_phases) {
        summary.phases.AddTimeout(is_read, static_cast<Us>(spec_.timeout_us));
      }
      continue;
    }
    devices_[target].bucket.push_back(PendingOp{
        at, kUserTenant, is_read, UserOffset(user), spec_.request_bytes});
  }
}

void ClusterSim::RunDeviceEpoch(Device& dev, std::uint32_t epoch, Us until) {
  if (dev.fatal) {
    dev.bucket.clear();
    return;
  }
  try {
    for (const PendingOp& op : dev.bucket) {
      const trace::OpType kind =
          op.is_read ? trace::OpType::kRead : trace::OpType::kWrite;
      if (op.tenant == kUserTenant) {
        if (op.is_read) {
          ++dev.submitted_reads;
        } else {
          ++dev.submitted_writes;
        }
        const bool is_read = op.is_read;
        dev.host->SubmitAtAs(
            op.at, kUserTenant, kind, op.offset, op.bytes,
            [this, &dev, is_read](const host::HostCompletion& c) {
              const std::uint32_t e = EpochOf(c.completion_us);
              const Us lat = c.LatencyUs();
              if (is_read) {
                dev.epoch_read[e].Add(lat);
                dev.run_read.Add(lat);
                ++dev.completed_reads;
              } else {
                dev.epoch_write[e].Add(lat);
                ++dev.completed_writes;
              }
              ++dev.completed;
            });
      } else {
        dev.host->SubmitAtAs(op.at, kRebuildTenant, kind, op.offset, op.bytes);
      }
    }
    dev.bucket.clear();
    dev.host->AdvanceTo(until);
  } catch (const std::exception&) {
    // Unrecoverable media error (e.g. spare blocks exhausted mid-GC): the
    // device is gone.  Its in-flight user requests never complete — charge
    // them the SLA timeout in the epoch the device died.
    dev.fatal = true;
    dev.bucket.clear();
    const std::uint64_t reads = dev.submitted_reads - dev.completed_reads;
    const std::uint64_t writes = dev.submitted_writes - dev.completed_writes;
    for (std::uint64_t i = 0; i < reads; ++i) {
      dev.epoch_read[epoch].Add(static_cast<Us>(spec_.timeout_us));
      dev.run_read.Add(static_cast<Us>(spec_.timeout_us));
    }
    for (std::uint64_t i = 0; i < writes; ++i) {
      dev.epoch_write[epoch].Add(static_cast<Us>(spec_.timeout_us));
    }
    dev.epoch_timeouts += reads + writes;
    dev.completed_reads = dev.submitted_reads;
    dev.completed_writes = dev.submitted_writes;
    if (dev.tracer != nullptr) {
      // `until - 1` keeps the charge inside THIS epoch's row (the tracer
      // would file `until` itself under the next one).
      dev.tracer->ChargeDeadDevice(reads, writes,
                                   static_cast<Us>(spec_.timeout_us),
                                   until - 1);
    }
  }
}

void ClusterSim::RebalanceDevice(std::uint32_t d, std::uint32_t epoch,
                                 ClusterResult& result,
                                 campaign::Json& event) {
  const std::uint32_t spares_before = router_->SparesLeft();
  const std::vector<ShardMove> moves = router_->MarkFailed(d);
  const bool spare_adopted = router_->SparesLeft() < spares_before;
  if (spare_adopted) ++result.spares_used;
  result.shards_moved += moves.size();
  event["shards_moved"] = static_cast<std::uint64_t>(moves.size());
  event["spare_adopted"] = spare_adopted;

  // Turn each displaced shard into rebuild traffic over the next epoch:
  // chunk reads on a surviving replica, chunk writes on the new holder,
  // both as the low-weight rebuild tenant through the normal host path.
  std::uint64_t unrecoverable = 0;
  const std::uint32_t next = epoch + 1;
  if (next < spec_.epochs) {
    const Us next_start =
        run_start_us_ + static_cast<Us>(next) * spec_.epoch_us;
    const std::uint64_t shard_bytes =
        spec_.shard_bytes != 0
            ? spec_.shard_bytes
            : std::max<std::uint64_t>(prefill_bytes_ /
                                          spec_.router.num_shards,
                                      spec_.migration_chunk_bytes);
    const std::uint64_t chunk = spec_.migration_chunk_bytes;
    const std::uint64_t chunks_per_shard = (shard_bytes + chunk - 1) / chunk;
    const std::uint64_t chunk_slots =
        std::max<std::uint64_t>(1, prefill_bytes_ / chunk);
    // Pace the whole rebuild over the repair window (rebuild_epochs, or
    // everything left of the run): repair speed must not buy its
    // bandwidth out of the serving tail.
    std::uint32_t window = spec_.epochs - next;
    if (spec_.rebuild_epochs != 0) {
      window = std::min(window, spec_.rebuild_epochs);
    }
    const Us window_us = static_cast<Us>(window) * spec_.epoch_us;
    std::uint64_t total_chunks = 0;
    for (const ShardMove& move : moves) {
      if (move.source != kNoDevice && !devices_[move.source].fatal &&
          !devices_[move.to].fatal) {
        total_chunks += chunks_per_shard;
      }
    }
    std::uint64_t chunk_index = 0;
    for (const ShardMove& move : moves) {
      if (move.source == kNoDevice) {
        // No surviving replica: with replicas=1 the shard's data is gone.
        ++unrecoverable;
        continue;
      }
      if (devices_[move.source].fatal || devices_[move.to].fatal) continue;
      for (std::uint64_t c = 0; c < chunks_per_shard; ++c) {
        const Us at =
            next_start +
            static_cast<Us>((static_cast<std::uint64_t>(window_us) *
                             chunk_index) /
                            total_chunks);
        ++chunk_index;
        const std::uint64_t offset =
            (Mix64(spec_.seed ^ (static_cast<std::uint64_t>(move.shard)
                                 << 20) ^
                   c) %
             chunk_slots) *
            chunk;
        devices_[move.source].bucket.push_back(
            PendingOp{at, kRebuildTenant, true, offset, chunk});
        devices_[move.to].bucket.push_back(
            PendingOp{at, kRebuildTenant, false, offset, chunk});
        result.migration_ops += 2;
        result.migration_bytes += chunk;
      }
    }
  } else {
    // Failure detected in the final epoch: the remap still happened but
    // there is no simulated time left to carry the rebuild traffic.
    event["rebuild_deferred"] = true;
  }
  result.unrecoverable_shards += unrecoverable;
  event["unrecoverable"] = unrecoverable;
}

void ClusterSim::DirectorStep(std::uint32_t epoch, ClusterResult& result) {
  const bool observed = spec_.policy == RebalancePolicy::kOnObserved;
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    Device& dev = devices_[d];
    result.epochs[epoch].timeouts += dev.epoch_timeouts;
    dev.epoch_timeouts = 0;

    // Observation leg: feed every live device's cumulative counters to its
    // monitors each epoch (serial phase, so byte-deterministic), and decide
    // whether the signals warrant a predictive drain.  A drained device is
    // out of service: its monitors freeze at the drain-time snapshot
    // instead of decaying back to healthy on idle windows.
    bool drain = false;
    const char* drain_cause = nullptr;
    if (observed && !dev.fatal && !dev.drained) {
      obs::HealthMonitor& health = health_[d];
      obs::SloMonitor& slo = slo_[d];
      health.Observe(CollectHealthSample(dev));
      slo.ObserveWindow(dev.epoch_read[epoch].quantiles());
      const obs::HealthState state = health.state();
      if (state == obs::HealthState::kDegraded) {
        ++result.epochs[epoch].devices_degraded;
      } else if (state == obs::HealthState::kFailing) {
        ++result.epochs[epoch].devices_failing;
      }
      if (slo.last_window_breached()) ++result.epochs[epoch].slo_breaches;
      if (dev.router_alive) {
        if (state == obs::HealthState::kFailing) {
          drain = true;
          drain_cause = "health-failing";
        } else if (slo.alerting()) {
          drain = true;
          drain_cause = "slo-burn";
        }
      }
    }

    const std::uint64_t lost = dev.ssd->ftl().fault_stats().LostPages();
    const bool unhealthy =
        dev.fatal || lost >= spec_.fail_on_lost_pages;
    if ((!unhealthy && !drain) || !dev.router_alive) continue;
    dev.router_alive = false;

    campaign::Json event;
    event["epoch"] = static_cast<std::uint64_t>(epoch);
    event["device"] = static_cast<std::uint64_t>(d);
    if (unhealthy) {
      // Reactive leg: the device is already lost (or has lost data).
      ++result.devices_failed;
      event["cause"] = std::string(dev.fatal ? "media-fatal" : "lost-pages");
      event["lost_pages"] = lost;
    } else {
      // Predictive leg: the device is still serving — evacuate it before
      // the observed ramp kills it for real.
      ++result.devices_drained;
      dev.drained = true;
      event["cause"] = std::string(drain_cause);
      event["health_score"] = health_[d].score();
      event["slo_burn_rate"] = slo_[d].burn_rate();
    }

    if (spec_.policy == RebalancePolicy::kNone) {
      event["action"] = std::string("none");
      result.events.push_back(std::move(event));
      continue;
    }

    event["action"] = std::string(unhealthy ? "rebalanced" : "drained");
    RebalanceDevice(d, epoch, result, event);
    result.events.push_back(std::move(event));
  }
}

ClusterResult ClusterSim::Run(std::uint32_t workers_override) {
  const std::uint32_t workers =
      workers_override != 0 ? workers_override : spec_.workers;
  const auto t0 = std::chrono::steady_clock::now();

  ClusterResult result;
  result.name = spec_.name;
  result.config = spec_.ConfigSummary();
  BuildFleet(result);

  for (std::uint32_t e = 0; e < spec_.epochs; ++e) {
    GenerateEpoch(e, result);
    const Us until = run_start_us_ + static_cast<Us>(e + 1) * spec_.epoch_us;
    util::ParallelFor(devices_.size(), workers, [&](std::size_t d) {
      RunDeviceEpoch(devices_[d], e, until);
    });
    DirectorStep(e, result);
  }
  // Drain whatever is still in flight; completions land in the last epoch.
  const std::uint32_t last = spec_.epochs - 1;
  util::ParallelFor(devices_.size(), workers, [&](std::size_t d) {
    Device& dev = devices_[d];
    if (dev.fatal) return;
    try {
      dev.host->Run();
    } catch (const std::exception&) {
      dev.fatal = true;
      const std::uint64_t reads = dev.submitted_reads - dev.completed_reads;
      const std::uint64_t writes =
          dev.submitted_writes - dev.completed_writes;
      for (std::uint64_t i = 0; i < reads; ++i) {
        dev.epoch_read[last].Add(static_cast<Us>(spec_.timeout_us));
        dev.run_read.Add(static_cast<Us>(spec_.timeout_us));
      }
      for (std::uint64_t i = 0; i < writes; ++i) {
        dev.epoch_write[last].Add(static_cast<Us>(spec_.timeout_us));
      }
      dev.epoch_timeouts += reads + writes;
      dev.completed_reads = dev.submitted_reads;
      dev.completed_writes = dev.submitted_writes;
      if (dev.tracer != nullptr) {
        dev.tracer->ChargeDeadDevice(
            reads, writes, static_cast<Us>(spec_.timeout_us),
            run_start_us_ + static_cast<Us>(spec_.epochs) * spec_.epoch_us - 1);
      }
    }
  });

  // Merge device-local epoch stats into the cluster view, in device order.
  for (std::uint32_t e = 0; e < spec_.epochs; ++e) {
    for (Device& dev : devices_) {
      result.epochs[e].read.Merge(dev.epoch_read[e]);
      result.epochs[e].write.Merge(dev.epoch_write[e]);
      if (dev.tracer != nullptr && e < dev.tracer->epoch_phases().size()) {
        result.epochs[e].phases.Merge(dev.tracer->epoch_phases()[e]);
      }
    }
  }
  result.has_phases = spec_.trace_phases;
  result.has_health = spec_.policy == RebalancePolicy::kOnObserved;
  for (Device& dev : devices_) {
    result.epochs[last].timeouts += dev.epoch_timeouts;
    dev.epoch_timeouts = 0;
  }
  result.devices.resize(devices_.size());
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    Device& dev = devices_[d];
    DeviceSummary& out = result.devices[d];
    out.alive = dev.router_alive;
    out.fatal = dev.fatal;
    out.in_ring = router_->IsAlive(d) && router_->PlacementSlotsOn(d) != 0;
    out.completed = dev.completed;
    out.lost_pages = dev.ssd->ftl().fault_stats().LostPages();
    out.read = dev.run_read;
    out.primary_shards = router_->PrimaryShardsOn(d);
    if (const qos::TenantTable* tenants = dev.host->tenants()) {
      const auto& stats = tenants->StatsOf(kRebuildTenant);
      out.rebuild_reads = stats.read_dispatches;
      out.rebuild_writes = stats.write_dispatches;
    }
    out.drained = dev.drained;
    if (dev.tracer != nullptr) out.phases = dev.tracer->phases();
    if (d < health_.size()) {
      out.health = health_[d].ToJson();
      out.slo = slo_[d].ToJson();
    }
  }

  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

std::string ClusterSim::FleetChromeTrace() const {
  std::vector<obs::FleetDeviceExport> fleet(devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    fleet[d].name = "device-" + std::to_string(d);
    fleet[d].tracer = devices_[d].tracer.get();
    if (d < health_.size()) {
      obs::CounterSeries health;
      health.name = "health_score";
      health.key = "permille";
      for (const double s : health_[d].score_series()) {
        health.values.push_back(
            static_cast<std::uint64_t>(s * 1000.0 + 0.5));
      }
      fleet[d].counters.push_back(std::move(health));
      obs::CounterSeries slo;
      slo.name = "slo_window_p99";
      slo.key = "us";
      for (const double q : slo_[d].quantile_series()) {
        slo.values.push_back(static_cast<std::uint64_t>(q + 0.5));
      }
      fleet[d].counters.push_back(std::move(slo));
    }
  }
  return obs::ChromeTraceJson(fleet);
}

campaign::Json ClusterResult::DeterministicJson() const {
  campaign::Json out;
  out["cluster"] = name;
  out["config"] = config;
  campaign::JsonArray epoch_list;
  for (const EpochSummary& e : epochs) {
    campaign::Json row;
    row["arrivals"] = e.arrivals;
    row["timeouts"] = e.timeouts;
    row["read"] = LatencyJson(e.read);
    row["write"] = LatencyJson(e.write);
    if (has_phases) row["phases"] = obs::PhaseStatsJson(e.phases);
    if (has_health) {
      campaign::Json health;
      health["devices_degraded"] = e.devices_degraded;
      health["devices_failing"] = e.devices_failing;
      health["slo_breaches"] = e.slo_breaches;
      row["health"] = std::move(health);
    }
    epoch_list.push_back(std::move(row));
  }
  out["epochs"] = campaign::Json(std::move(epoch_list));
  campaign::JsonArray device_list;
  for (const DeviceSummary& d : devices) {
    campaign::Json row;
    row["alive"] = d.alive;
    row["fatal"] = d.fatal;
    row["completed"] = d.completed;
    row["lost_pages"] = d.lost_pages;
    row["read"] = LatencyJson(d.read);
    row["primary_shards"] = d.primary_shards;
    row["rebuild_reads"] = d.rebuild_reads;
    row["rebuild_writes"] = d.rebuild_writes;
    if (has_phases) row["phases"] = obs::PhaseStatsJson(d.phases);
    if (has_health) {
      row["drained"] = d.drained;
      row["health"] = d.health;
      row["slo"] = d.slo;
    }
    device_list.push_back(std::move(row));
  }
  out["devices"] = campaign::Json(std::move(device_list));
  campaign::JsonArray event_list;
  for (const campaign::Json& e : events) event_list.push_back(e);
  out["events"] = campaign::Json(std::move(event_list));
  campaign::Json totals;
  totals["devices_failed"] = devices_failed;
  totals["devices_drained"] = devices_drained;
  totals["shards_moved"] = shards_moved;
  totals["spares_used"] = spares_used;
  totals["unrecoverable_shards"] = unrecoverable_shards;
  totals["migration_ops"] = migration_ops;
  totals["migration_bytes"] = migration_bytes;
  out["totals"] = totals;
  return out;
}

campaign::Json ClusterResult::Report() const {
  campaign::Json out = DeterministicJson();
  out["wall_ms"] = wall_ms;
  return out;
}

std::string ClusterResult::Csv() const {
  std::string csv =
      "cluster,epoch,arrivals,timeouts,read_count,read_p50_us,read_p99_us,"
      "write_count,write_p50_us,write_p99_us,read_paced_mean_us,"
      "read_queued_mean_us,read_media_mean_us,devices_degraded,"
      "devices_failing,slo_breaches\n";
  const auto phase_mean = [&](const util::LatencyStats& s) {
    return has_phases ? std::to_string(s.mean_us()) : std::string("0");
  };
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    const EpochSummary& row = epochs[e];
    csv += campaign::CsvField(name) + "," + std::to_string(e) + "," +
           std::to_string(row.arrivals) + "," + std::to_string(row.timeouts) +
           "," + std::to_string(row.read.count()) + "," +
           std::to_string(row.read.p50_us()) + "," +
           std::to_string(row.read.p99_us()) + "," +
           std::to_string(row.write.count()) + "," +
           std::to_string(row.write.p50_us()) + "," +
           std::to_string(row.write.p99_us()) + "," +
           phase_mean(row.phases.read.paced) + "," +
           phase_mean(row.phases.read.queued) + "," +
           phase_mean(row.phases.read.media) + "," +
           std::to_string(row.devices_degraded) + "," +
           std::to_string(row.devices_failing) + "," +
           std::to_string(row.slo_breaches) + "\n";
  }
  return csv;
}

}  // namespace ctflash::cluster
