#include "core/access_frequency_table.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ctflash::core {

AccessFrequencyTable::AccessFrequencyTable(std::uint32_t promote_threshold,
                                           std::size_t capacity)
    : promote_threshold_(promote_threshold), capacity_(capacity) {
  if (promote_threshold == 0) {
    throw std::invalid_argument(
        "AccessFrequencyTable: promote_threshold must be > 0");
  }
  if (capacity == 0) {
    throw std::invalid_argument("AccessFrequencyTable: capacity must be > 0");
  }
}

void AccessFrequencyTable::MaybeDecay() {
  if (freq_.size() < capacity_) return;
  ++decays_;
  for (auto it = freq_.begin(); it != freq_.end();) {
    it->second /= 2;
    if (it->second == 0) {
      it = freq_.erase(it);
    } else {
      ++it;
    }
  }
  // Pathological case: every entry still above zero after halving.  Drop
  // enough entries to make room; which ones go is unspecified (they are all
  // popular) but deterministic within a run.
  while (freq_.size() >= capacity_) freq_.erase(freq_.begin());
}

void AccessFrequencyTable::OnWrite(Lpn lpn) {
  const auto it = freq_.find(lpn);
  if (it != freq_.end()) {
    it->second = 0;
    return;
  }
  MaybeDecay();
  freq_.emplace(lpn, 0);
}

void AccessFrequencyTable::Register(Lpn lpn, std::uint32_t initial_frequency) {
  const auto it = freq_.find(lpn);
  if (it != freq_.end()) {
    it->second = initial_frequency;
    return;
  }
  MaybeDecay();
  freq_.emplace(lpn, initial_frequency);
}

std::uint32_t AccessFrequencyTable::OnRead(Lpn lpn) {
  const auto it = freq_.find(lpn);
  if (it != freq_.end()) {
    if (it->second < ~0u) ++it->second;
    return it->second;
  }
  MaybeDecay();
  freq_.emplace(lpn, 1);
  return 1;
}

std::uint32_t AccessFrequencyTable::FrequencyOf(Lpn lpn) const {
  const auto it = freq_.find(lpn);
  return it == freq_.end() ? 0 : it->second;
}

void AccessFrequencyTable::Erase(Lpn lpn) { freq_.erase(lpn); }

void AccessFrequencyTable::SaveState(util::StateWriter& w) const {
  w.Tag("FREQ");
  std::vector<std::pair<Lpn, std::uint32_t>> entries(freq_.begin(), freq_.end());
  std::sort(entries.begin(), entries.end());
  w.PutU64(entries.size());
  for (const auto& [lpn, count] : entries) {
    w.PutU64(lpn);
    w.PutU32(count);
  }
  w.PutU64(decays_);
}

void AccessFrequencyTable::LoadState(util::StateReader& r) {
  r.ExpectTag("FREQ");
  const std::uint64_t n = r.GetCount();
  freq_.clear();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Lpn lpn = r.GetU64();
    freq_[lpn] = r.GetU32();
  }
  decays_ = r.GetU64();
}

}  // namespace ctflash::core
