#include "util/serial.h"

#include <array>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace ctflash::util {

namespace {

std::string TagName(const char* tag) { return std::string(tag, 4); }

}  // namespace

void StateWriter::Tag(const char (&tag)[5]) { PutBytes(tag, 4); }

void StateWriter::PutU8(std::uint8_t v) { bytes_.push_back(v); }

void StateWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void StateWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void StateWriter::PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }

void StateWriter::PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }

void StateWriter::PutBool(bool v) { PutU8(v ? 1 : 0); }

void StateWriter::PutString(const std::string& s) {
  PutU64(s.size());
  PutBytes(s.data(), s.size());
}

void StateWriter::PutBytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

void StateReader::Need(std::size_t n) const {
  if (size_ - pos_ < n) {
    throw std::runtime_error("snapshot: truncated state (need " +
                             std::to_string(n) + " bytes at offset " +
                             std::to_string(pos_) + ", have " +
                             std::to_string(size_ - pos_) + ")");
  }
}

void StateReader::ExpectTag(const char (&tag)[5]) {
  Need(4);
  if (std::memcmp(data_ + pos_, tag, 4) != 0) {
    const std::string found(reinterpret_cast<const char*>(data_ + pos_), 4);
    throw std::runtime_error("snapshot: expected section '" + TagName(tag) +
                             "' but found '" + found + "' at offset " +
                             std::to_string(pos_));
  }
  pos_ += 4;
}

std::uint8_t StateReader::GetU8() {
  Need(1);
  return data_[pos_++];
}

std::uint32_t StateReader::GetU32() {
  Need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t StateReader::GetU64() {
  Need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::int64_t StateReader::GetI64() { return static_cast<std::int64_t>(GetU64()); }

double StateReader::GetDouble() { return std::bit_cast<double>(GetU64()); }

bool StateReader::GetBool() {
  const std::uint8_t v = GetU8();
  if (v > 1) {
    throw std::runtime_error("snapshot: invalid bool value " + std::to_string(v));
  }
  return v != 0;
}

std::string StateReader::GetString() {
  const std::uint64_t n = GetU64();
  Need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void StateReader::GetBytes(void* out, std::size_t n) {
  Need(n);
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
}

std::vector<std::uint64_t> StateReader::GetU64Seq() {
  const std::uint64_t n = GetCount();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(GetU64());
  return v;
}

std::uint64_t StateReader::GetCount() {
  const std::uint64_t n = GetU64();
  if (n > Remaining()) {
    throw std::runtime_error("snapshot: sequence count " + std::to_string(n) +
                             " exceeds remaining " + std::to_string(Remaining()) +
                             " bytes");
  }
  return n;
}

void StateReader::ExpectEnd() const {
  if (!AtEnd()) {
    throw std::runtime_error("snapshot: " + std::to_string(Remaining()) +
                             " trailing bytes after state payload");
  }
}

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ctflash::util
